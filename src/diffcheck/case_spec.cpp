#include "diffcheck/case_spec.hpp"

#include <cctype>

#include "common/error.hpp"

namespace fades::diffcheck {

using common::ErrorKind;
using common::raise;
using common::require;
using obs::Json;

const char* toString(DesignKind k) {
  switch (k) {
    case DesignKind::Rtl: return "rtl";
    case DesignKind::Mc8051: return "mc8051";
  }
  return "?";
}

DesignKind designKindFromString(const std::string& text) {
  if (text == "rtl") return DesignKind::Rtl;
  if (text == "mc8051") return DesignKind::Mc8051;
  raise(ErrorKind::InvalidArgument, "unknown design kind '" + text + "'");
}

campaign::FaultModel faultModelFromString(const std::string& text) {
  using campaign::FaultModel;
  for (const auto m : {FaultModel::BitFlip, FaultModel::Pulse,
                       FaultModel::Delay, FaultModel::Indetermination}) {
    if (text == campaign::toString(m)) return m;
  }
  raise(ErrorKind::InvalidArgument, "unknown fault model '" + text + "'");
}

campaign::TargetClass targetClassFromString(const std::string& text) {
  using campaign::TargetClass;
  for (const auto t :
       {TargetClass::SequentialFF, TargetClass::MemoryBlockBit,
        TargetClass::CombinationalLut, TargetClass::CbInputLine,
        TargetClass::SequentialLine, TargetClass::CombinationalLine}) {
    if (text == campaign::toString(t)) return t;
  }
  raise(ErrorKind::InvalidArgument, "unknown target class '" + text + "'");
}

unsigned CaseSpec::instructionCount() const {
  unsigned n = 0;
  for (const auto& line : program) {
    // A line counts as an instruction when something follows the optional
    // label and it is not a directive or a pure comment.
    std::string rest = line;
    if (const auto colon = rest.find(':'); colon != std::string::npos) {
      rest = rest.substr(colon + 1);
    }
    std::size_t i = 0;
    while (i < rest.size() && std::isspace(static_cast<unsigned char>(rest[i]))) {
      ++i;
    }
    if (i >= rest.size() || rest[i] == ';' || rest[i] == '.') continue;
    ++n;
  }
  return n;
}

namespace {

const Json& member(const Json& j, const char* key) {
  const Json* m = j.find(key);
  require(m != nullptr, ErrorKind::InvalidArgument,
          std::string("case spec missing field '") + key + "'");
  return *m;
}

std::uint64_t memberU64(const Json& j, const char* key) {
  const Json& m = member(j, key);
  require(m.isNumber(), ErrorKind::InvalidArgument,
          std::string("case spec field '") + key + "' must be a number");
  return static_cast<std::uint64_t>(m.asInt());
}

std::string memberStr(const Json& j, const char* key) {
  const Json& m = member(j, key);
  require(m.isString(), ErrorKind::InvalidArgument,
          std::string("case spec field '") + key + "' must be a string");
  return m.asString();
}

}  // namespace

Json CaseSpec::toJson() const {
  Json j = Json::object();
  j.set("schema", Json(std::string(kSchema)));
  j.set("name", Json(name));
  Json design = Json::object();
  design.set("kind", Json(std::string(toString(kind))));
  if (kind == DesignKind::Rtl) {
    design.set("seed", Json(rtl.seed));
    design.set("regs", Json(rtl.regs));
    design.set("reg_width", Json(rtl.regWidth));
    design.set("gates", Json(rtl.gates));
    design.set("with_ram", Json(rtl.withRam));
    design.set("named_signals", Json(rtl.namedSignals));
  } else {
    Json lines = Json::array();
    for (const auto& line : program) lines.push(Json(line));
    design.set("program", lines);
  }
  j.set("design", design);
  j.set("run_cycles", Json(runCycles));
  Json inj = Json::object();
  inj.set("model", Json(std::string(campaign::toString(inject.model))));
  inj.set("targets", Json(std::string(campaign::toString(inject.targets))));
  inj.set("unit", Json(static_cast<std::int64_t>(inject.unit)));
  Json band = Json::object();
  band.set("label", Json(inject.band.label));
  band.set("min_cycles", Json(inject.band.minCycles));
  band.set("max_cycles", Json(inject.band.maxCycles));
  inj.set("band", band);
  inj.set("experiments", Json(static_cast<std::uint64_t>(inject.experiments)));
  inj.set("seed", Json(inject.seed));
  j.set("inject", inj);
  return j;
}

CaseSpec CaseSpec::fromJson(const Json& j) {
  require(j.isObject(), ErrorKind::InvalidArgument,
          "case spec must be a JSON object");
  require(memberStr(j, "schema") == kSchema, ErrorKind::InvalidArgument,
          "case spec schema mismatch (want " + std::string(kSchema) + ")");
  CaseSpec c;
  c.name = memberStr(j, "name");
  const Json& design = member(j, "design");
  c.kind = designKindFromString(memberStr(design, "kind"));
  if (c.kind == DesignKind::Rtl) {
    c.rtl.seed = memberU64(design, "seed");
    c.rtl.regs = static_cast<unsigned>(memberU64(design, "regs"));
    c.rtl.regWidth = static_cast<unsigned>(memberU64(design, "reg_width"));
    c.rtl.gates = static_cast<unsigned>(memberU64(design, "gates"));
    c.rtl.withRam = member(design, "with_ram").asBool();
    c.rtl.namedSignals =
        static_cast<unsigned>(memberU64(design, "named_signals"));
    require(c.rtl.regs >= 1 && c.rtl.regWidth >= 1, ErrorKind::InvalidArgument,
            "rtl case needs regs >= 1 and reg_width >= 1");
  } else {
    const Json& lines = member(design, "program");
    require(lines.isArray() && lines.size() > 0, ErrorKind::InvalidArgument,
            "mc8051 case needs a non-empty program array");
    for (const auto& line : lines.items()) {
      require(line.isString(), ErrorKind::InvalidArgument,
              "program lines must be strings");
      c.program.push_back(line.asString());
    }
  }
  c.runCycles = memberU64(j, "run_cycles");
  require(c.runCycles >= 2, ErrorKind::InvalidArgument,
          "run_cycles must be >= 2");
  const Json& inj = member(j, "inject");
  c.inject.model = faultModelFromString(memberStr(inj, "model"));
  c.inject.targets = targetClassFromString(memberStr(inj, "targets"));
  c.inject.unit = static_cast<int>(memberU64(inj, "unit"));
  const Json& band = member(inj, "band");
  c.inject.band.label = memberStr(band, "label");
  c.inject.band.minCycles = member(band, "min_cycles").asNumber();
  c.inject.band.maxCycles = member(band, "max_cycles").asNumber();
  require(c.inject.band.minCycles >= 0 &&
              c.inject.band.maxCycles >= c.inject.band.minCycles,
          ErrorKind::InvalidArgument, "malformed duration band");
  c.inject.experiments = static_cast<unsigned>(memberU64(inj, "experiments"));
  require(c.inject.experiments >= 1, ErrorKind::InvalidArgument,
          "inject.experiments must be >= 1");
  c.inject.seed = memberU64(inj, "seed");
  return c;
}

std::string CaseSpec::describe() const {
  std::string s = name + " [" + toString(kind) + "] ";
  if (kind == DesignKind::Rtl) {
    s += "seed=" + std::to_string(rtl.seed) +
         " regs=" + std::to_string(rtl.regs) + "x" +
         std::to_string(rtl.regWidth) + " gates=" + std::to_string(rtl.gates) +
         (rtl.withRam ? " +ram" : "");
  } else {
    s += std::to_string(instructionCount()) + " instructions";
  }
  s += " cycles=" + std::to_string(runCycles) + " " +
       campaign::toString(inject.model) + "/" +
       campaign::toString(inject.targets) + " x" +
       std::to_string(inject.experiments) + " seed=" +
       std::to_string(inject.seed) + " band=" + inject.band.label;
  return s;
}

}  // namespace fades::diffcheck
