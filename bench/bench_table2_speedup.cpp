// Table 2: speed-up of FADES over VFIT for the same campaigns.
//
// VFIT's time is dominated by simulating the model on the host CPU (near
// constant across fault types, 21600 s for 3000 faults in the paper); FADES
// pays per-fault reconfiguration traffic instead. The paper's speed-ups:
// bit-flip FFs 23.60, memory 40.30, pulse 28.60 / 14.21, delay 8.68 / 7.77,
// indetermination 20.28 / 26.83; combined estimate 15.66.
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::CampaignSpec;
using campaign::DurationBand;
using campaign::FaultModel;
using campaign::TargetClass;
using netlist::Unit;

namespace {

double meanSeconds(core::FadesTool& tool, FaultModel m, TargetClass c,
                   DurationBand band, unsigned n) {
  CampaignSpec spec;
  spec.model = m;
  spec.targets = c;
  spec.band = band;
  spec.experiments = n;
  spec.seed = 11;
  return bench::runCampaign(tool, spec).modeledSeconds.mean();
}

double meanSecondsVfit(vfit::VfitTool& tool, FaultModel m, TargetClass c,
                       DurationBand band, unsigned n) {
  CampaignSpec spec;
  spec.model = m;
  spec.targets = c;
  spec.band = band;
  spec.experiments = n;
  spec.seed = 11;
  return tool.runCampaign(spec).modeledSeconds.mean();
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun benchRun("table2_speedup", argc, argv);
  System8051 sys;
  sys.printHeadline();
  auto& fades = sys.fades();
  auto& vfitTool = sys.vfit();
  const unsigned n = timingCount(60);
  const unsigned nDelay = std::min(n, 30u);

  struct Row {
    std::string label;
    double fadesSec;
    double vfitSec;  // <0: not supported, use the flat estimate
    std::string paperSpeedup;
  };
  std::vector<Row> data;

  const double vfitFlat =
      meanSecondsVfit(vfitTool, FaultModel::BitFlip,
                      TargetClass::SequentialFF, DurationBand::shortBand(),
                      n);

  data.push_back({"bit-flip / FFs",
                  meanSeconds(fades, FaultModel::BitFlip,
                              TargetClass::SequentialFF,
                              DurationBand::shortBand(), n),
                  vfitFlat, "23.60"});
  data.push_back({"bit-flip / memory blocks",
                  meanSeconds(fades, FaultModel::BitFlip,
                              TargetClass::MemoryBlockBit,
                              DurationBand::shortBand(), n),
                  meanSecondsVfit(vfitTool, FaultModel::BitFlip,
                                  TargetClass::MemoryBlockBit,
                                  DurationBand::shortBand(), n),
                  "40.30"});
  data.push_back({"pulse / combinational (<1 cycle)",
                  meanSeconds(fades, FaultModel::Pulse,
                              TargetClass::CombinationalLut,
                              DurationBand::subCycle(), n),
                  meanSecondsVfit(vfitTool, FaultModel::Pulse,
                                  TargetClass::CombinationalLut,
                                  DurationBand::subCycle(), n),
                  "28.60"});
  data.push_back({"pulse / combinational (1-10 cycles)",
                  meanSeconds(fades, FaultModel::Pulse,
                              TargetClass::CombinationalLut,
                              DurationBand::shortBand(), n),
                  meanSecondsVfit(vfitTool, FaultModel::Pulse,
                                  TargetClass::CombinationalLut,
                                  DurationBand::shortBand(), n),
                  "14.21"});
  {
    auto& delayTool = sys.fadesForDelay();
    data.push_back({"delay / sequential",
                    meanSeconds(delayTool, FaultModel::Delay,
                                TargetClass::SequentialLine,
                                DurationBand::shortBand(), nDelay),
                    -1.0, "8.68"});
    data.push_back({"delay / combinational",
                    meanSeconds(delayTool, FaultModel::Delay,
                                TargetClass::CombinationalLine,
                                DurationBand::shortBand(), nDelay),
                    -1.0, "7.77"});
  }
  data.push_back({"indetermination / sequential",
                  meanSeconds(fades, FaultModel::Indetermination,
                              TargetClass::SequentialFF,
                              DurationBand::shortBand(), n),
                  meanSecondsVfit(vfitTool, FaultModel::Indetermination,
                                  TargetClass::SequentialFF,
                                  DurationBand::shortBand(), n),
                  "20.28"});
  data.push_back({"indetermination / combinational",
                  meanSeconds(fades, FaultModel::Indetermination,
                              TargetClass::CombinationalLut,
                              DurationBand::shortBand(), n),
                  meanSecondsVfit(vfitTool, FaultModel::Indetermination,
                                  TargetClass::CombinationalLut,
                                  DurationBand::shortBand(), n),
                  "26.83"});

  std::vector<std::vector<std::string>> rows;
  double fadesSum = 0, count = 0;
  for (const auto& r : data) {
    // VFIT cannot run delay experiments; its flat simulation time is used
    // as the estimate (which is also how the paper's Table 2 reads).
    const double v = r.vfitSec > 0 ? r.vfitSec : vfitFlat;
    rows.push_back({r.label, common::fixed(r.fadesSec * 3000, 0),
                    common::fixed(v * 3000, 0) + (r.vfitSec > 0 ? "" : " *"),
                    common::fixed(v / r.fadesSec, 2), r.paperSpeedup});
    fadesSum += r.fadesSec;
    count += 1;
  }
  const double fadesMean = fadesSum / count;
  rows.push_back({"estimated mean (all models)",
                  common::fixed(fadesMean * 3000, 0),
                  common::fixed(vfitFlat * 3000, 0),
                  common::fixed(vfitFlat / fadesMean, 2), "15.66"});

  printTable("Table 2 - FADES vs VFIT, scaled to 3000 faults "
             "(* = VFIT estimate; it cannot inject delays)",
             {"fault model / target", "FADES (s)", "VFIT (s)", "speed-up",
              "paper speed-up"},
             rows);
  std::printf("Paper reference: VFIT 21600 s flat; FADES per Figure 10.\n");
  return 0;
}
