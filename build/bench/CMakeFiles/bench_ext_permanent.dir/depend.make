# Empty dependencies file for bench_ext_permanent.
# This may be replaced when dependencies are built.
