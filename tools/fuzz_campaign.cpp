// Differential-oracle fuzzer: FADES emulation vs VFIT simulation vs the
// golden ISS, over generated designs and injection specs.
//
// Modes:
//   fuzz_campaign --budget N --seed S     bounded fuzz run: N generated cases
//                                         from seeds S, S+1, ...; disagreements
//                                         are shrunk to minimal reproducers and
//                                         written as self-contained case files
//   fuzz_campaign --replay DIR            replay every *.json case in DIR (the
//                                         committed corpus); any violation
//                                         fails the run
//   fuzz_campaign --emit-corpus DIR       (re)generate the committed seed
//                                         corpus files into DIR
//
// Shared flags:
//   --jobs N          check cases (and shrink candidates) on N workers.
//                     Wall-clock only: reports, artifacts and reproducers are
//                     bit-identical for every N.
//   --artifact PATH   write a fades.run/1 artifact (one record per case, the
//                     diffcheck.* metrics, modeled-cost totals)
//   --out DIR         where fuzz mode writes shrunk reproducers
//                     (default diffcheck-failures)
//   --shrink-budget N oracle-call budget per shrink (default 120)
//   --quick           skip the determinism / retry-exclusion double-runs
//                     (halves fuzz cost; corpus replay keeps them on)
//
// Exit code: 0 = all cases agree, 1 = at least one violation, 2 = usage.
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "diffcheck/corpus.hpp"
#include "diffcheck/gen.hpp"
#include "diffcheck/oracle.hpp"
#include "diffcheck/shrink.hpp"
#include "obs/artifact.hpp"
#include "obs/metrics.hpp"

using namespace fades;
using diffcheck::CaseReport;
using diffcheck::CaseSpec;

namespace {

constexpr const char* kUsage =
    "usage: fuzz_campaign [--budget N] [--seed S] [--jobs N]\n"
    "                     [--shrink-budget N] [--out DIR] [--artifact PATH]\n"
    "                     [--quick]\n"
    "       fuzz_campaign --replay DIR [--jobs N] [--artifact PATH]\n"
    "       fuzz_campaign --emit-corpus DIR\n";

[[noreturn]] void usageError(const std::string& message) {
  std::fprintf(stderr, "error: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

unsigned parsePositive(const std::string& text, const char* what) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    usageError(std::string(what) + " expects a positive integer, got '" +
               text + "'");
  }
  errno = 0;
  const unsigned long value = std::strtoul(text.c_str(), nullptr, 10);
  if (errno != 0 || value == 0 || value > UINT_MAX) {
    usageError(std::string(what) + " expects a positive integer, got '" +
               text + "'");
  }
  return static_cast<unsigned>(value);
}

/// Run `work(i)` for i in [0, n) on up to `jobs` concurrent workers,
/// returning results in index order regardless of completion order.
template <typename F>
auto inOrder(std::size_t n, unsigned jobs, F work) {
  using R = decltype(work(std::size_t{0}));
  std::vector<R> results;
  results.reserve(n);
  for (std::size_t base = 0; base < n; base += jobs) {
    const std::size_t end = std::min(n, base + jobs);
    std::vector<std::future<R>> batch;
    for (std::size_t i = base; i < end; ++i) {
      batch.push_back(std::async(std::launch::async, work, i));
    }
    for (auto& f : batch) results.push_back(f.get());
  }
  return results;
}

/// The diffcheck.* slice of the metrics registry. Only integer counters, so
/// the artifact is byte-identical at any --jobs (histogram float sums are
/// accumulation-order dependent and stay out).
obs::Json diffcheckMetrics() {
  obs::Json all = obs::Registry::global().snapshotJson();
  obs::Json out = obs::Json::object();
  if (const obs::Json* counters = all.find("counters")) {
    for (const auto& [name, value] : counters->members()) {
      if (name.rfind("diffcheck.", 0) == 0) out.set(name, value);
    }
  }
  return out;
}

struct CheckedCase {
  CaseReport report;
  std::optional<diffcheck::ShrinkResult> shrink;
  std::string error;  // non-empty when the case raised instead of reporting
};

void printCase(const CheckedCase& cc) {
  if (!cc.error.empty()) {
    std::printf("ERROR %s: %s\n", cc.report.spec.name.c_str(),
                cc.error.c_str());
    return;
  }
  if (cc.report.ok()) {
    std::printf("ok    %s (%u experiments%s)\n", cc.report.spec.name.c_str(),
                cc.report.experiments, cc.report.vfitRan ? ", vfit" : "");
    return;
  }
  for (const auto& v : cc.report.violations) {
    std::printf("FAIL  %s [%s] %s\n", cc.report.spec.name.c_str(),
                v.rule.c_str(), v.detail.c_str());
  }
  if (cc.shrink.has_value()) {
    std::printf("      shrunk: %s (%u reductions, %u evaluations)\n",
                cc.shrink->minimal.describe().c_str(), cc.shrink->accepted,
                cc.shrink->evaluated);
  }
}

int writeArtifactAndSummarize(const std::string& mode,
                              const std::string& artifactPath,
                              const std::vector<CheckedCase>& cases,
                              obs::Json runSpec) {
  std::size_t failed = 0, errored = 0;
  double modeledSeconds = 0;
  for (const auto& cc : cases) {
    if (!cc.error.empty()) ++errored;
    else if (!cc.report.ok()) ++failed;
    modeledSeconds += cc.report.fadesModeledSeconds;
  }
  if (!artifactPath.empty()) {
    obs::RunArtifact artifact("diffcheck", mode);
    artifact.setSpec(std::move(runSpec));
    for (const auto& cc : cases) {
      obs::Json rec = cc.report.toJson();
      if (!cc.error.empty()) rec.set("error", obs::Json(cc.error));
      if (cc.shrink.has_value()) {
        obs::Json s = obs::Json::object();
        s.set("minimal", cc.shrink->minimal.toJson());
        s.set("violation", cc.shrink->violation.toJson());
        s.set("accepted", obs::Json(cc.shrink->accepted));
        s.set("evaluated", obs::Json(cc.shrink->evaluated));
        s.set("budget_exhausted", obs::Json(cc.shrink->budgetExhausted));
        rec.set("shrink", s);
      }
      artifact.addRecord(std::move(rec));
    }
    artifact.setMetrics(diffcheckMetrics());
    obs::Json cost = obs::Json::object();
    cost.set("fades_modeled_seconds", obs::Json(modeledSeconds));
    artifact.setCost(std::move(cost));
    artifact.writeJson(artifactPath);
  }
  std::printf("%zu cases, %zu disagreements, %zu errors\n", cases.size(),
              failed, errored);
  return failed + errored > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned budget = 50;
  std::uint64_t seed = 1;
  unsigned jobs = 1;
  unsigned shrinkBudget = 120;
  bool quick = false;
  std::string replayDir, emitDir, artifactPath;
  std::string outDir = "diffcheck-failures";

  auto flagValue = [&](int& i, const char* flag) {
    if (i + 1 >= argc) usageError(std::string(flag) + " needs a value");
    return std::string(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--budget") {
      budget = parsePositive(flagValue(i, "--budget"), "--budget");
    } else if (a == "--seed") {
      seed = parsePositive(flagValue(i, "--seed"), "--seed");
    } else if (a == "--jobs") {
      jobs = parsePositive(flagValue(i, "--jobs"), "--jobs");
    } else if (a == "--shrink-budget") {
      shrinkBudget =
          parsePositive(flagValue(i, "--shrink-budget"), "--shrink-budget");
    } else if (a == "--replay") {
      replayDir = flagValue(i, "--replay");
    } else if (a == "--emit-corpus") {
      emitDir = flagValue(i, "--emit-corpus");
    } else if (a == "--out") {
      outDir = flagValue(i, "--out");
    } else if (a == "--artifact") {
      artifactPath = flagValue(i, "--artifact");
    } else if (a == "--quick") {
      quick = true;
    } else {
      usageError("unknown argument '" + a + "'");
    }
  }
  if (!replayDir.empty() && !emitDir.empty()) {
    usageError("--replay and --emit-corpus are mutually exclusive");
  }

  try {
    if (!emitDir.empty()) {
      std::filesystem::create_directories(emitDir);
      const auto corpus = diffcheck::seedCorpus();
      for (const auto& c : corpus) {
        diffcheck::saveCase(c, emitDir + "/" + c.name + ".json");
        std::printf("wrote %s/%s.json (%s)\n", emitDir.c_str(),
                    c.name.c_str(), c.describe().c_str());
      }
      std::printf("%zu corpus cases\n", corpus.size());
      return 0;
    }

    diffcheck::OracleOptions oracleOpt;
    if (quick) {
      oracleOpt.checkDeterminism = false;
      oracleOpt.checkRetryExclusion = false;
    }

    if (!replayDir.empty()) {
      // A vanished or empty corpus must read as a usage error (exit 2), not
      // as a clean zero-case replay - CI greps would otherwise pass on a
      // directory typo.
      std::error_code ec;
      if (!std::filesystem::is_directory(replayDir, ec)) {
        usageError("corpus directory not found: " + replayDir);
      }
      const auto files = diffcheck::listCorpusFiles(replayDir);
      if (files.empty()) usageError("no case files in " + replayDir);
      std::vector<CaseSpec> specs;
      for (const auto& f : files) specs.push_back(diffcheck::loadCase(f));
      const auto cases =
          inOrder(specs.size(), jobs, [&](std::size_t i) -> CheckedCase {
            CheckedCase cc;
            cc.report.spec = specs[i];
            try {
              cc.report = diffcheck::checkCase(specs[i], oracleOpt);
            } catch (const std::exception& e) {
              cc.error = e.what();
            }
            return cc;
          });
      for (const auto& cc : cases) printCase(cc);
      obs::Json runSpec = obs::Json::object();
      runSpec.set("mode", obs::Json("replay"));
      runSpec.set("corpus", obs::Json(replayDir));
      runSpec.set("cases", obs::Json(static_cast<std::uint64_t>(files.size())));
      return writeArtifactAndSummarize("replay", artifactPath, cases,
                                       std::move(runSpec));
    }

    // --- fuzz mode ---------------------------------------------------------
    // Phase 1: check the generated cases (case-parallel). Phase 2: shrink
    // the disagreements one at a time (candidate-parallel), so reproducers
    // come out identical at any job count.
    std::vector<CaseSpec> specs;
    specs.reserve(budget);
    for (unsigned i = 0; i < budget; ++i) {
      specs.push_back(diffcheck::generateCase(seed + i));
    }
    auto cases =
        inOrder(specs.size(), jobs, [&](std::size_t i) -> CheckedCase {
          CheckedCase cc;
          cc.report.spec = specs[i];
          try {
            cc.report = diffcheck::checkCase(specs[i], oracleOpt);
          } catch (const std::exception& e) {
            cc.error = e.what();
          }
          return cc;
        });
    bool wroteReproducer = false;
    for (auto& cc : cases) {
      if (cc.error.empty() && !cc.report.ok()) {
        const diffcheck::CaseOracle oracle = [&](const CaseSpec& s) {
          return diffcheck::checkCase(s, oracleOpt).violations;
        };
        diffcheck::ShrinkOptions sOpt;
        sOpt.jobs = jobs;
        sOpt.maxEvaluations = shrinkBudget;
        cc.shrink =
            diffcheck::shrinkCase(cc.report.spec, cc.report.violations.front(),
                                  oracle, sOpt);
        std::filesystem::create_directories(outDir);
        CaseSpec minimal = cc.shrink->minimal;
        minimal.name = cc.report.spec.name + "-min";
        diffcheck::saveCase(minimal, outDir + "/" + minimal.name + ".json");
        wroteReproducer = true;
      }
    }
    for (const auto& cc : cases) printCase(cc);
    if (wroteReproducer) {
      std::printf("reproducers written to %s/\n", outDir.c_str());
    }
    obs::Json runSpec = obs::Json::object();
    runSpec.set("mode", obs::Json("fuzz"));
    runSpec.set("budget", obs::Json(budget));
    runSpec.set("seed", obs::Json(seed));
    runSpec.set("shrink_budget", obs::Json(shrinkBudget));
    runSpec.set("quick", obs::Json(quick));
    return writeArtifactAndSummarize("fuzz", artifactPath, cases,
                                     std::move(runSpec));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
}
