// Differential-oracle case specification.
//
// A CaseSpec is the self-contained, JSON-serializable description of one
// differential-checking case: a generated design (a parameterized rtl::builder
// circuit or an MC8051 assembly program), a workload length, and an injection
// spec. Everything the three-way oracle needs to rebuild and re-attack the
// exact same system lives in this one structure - the committed seed corpus
// is a directory of these, and the shrinker works by transforming them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/types.hpp"
#include "obs/json.hpp"

namespace fades::diffcheck {

/// Which design family the case exercises.
enum class DesignKind : std::uint8_t { Rtl, Mc8051 };
const char* toString(DesignKind k);

/// Parameters of the deterministic random-RTL generator (gen.hpp). The
/// circuit is a pure function of these fields, so a case file carries the
/// parameters instead of a netlist dump and stays both tiny and shrinkable.
struct RtlParams {
  std::uint64_t seed = 1;
  unsigned regs = 3;       // register count, >= 1
  unsigned regWidth = 4;   // bits per register, >= 1
  unsigned gates = 24;     // combinational soup size, >= 0
  bool withRam = false;    // add a small written-and-read RAM
  /// Intermediate gate outputs published as named HDL signals ("s0"...),
  /// giving VFIT a combinational target population like a VHDL tool's.
  unsigned namedSignals = 4;
};

/// One differential case. `inject` reuses the campaign vocabulary: its
/// seed/experiments/band drive the exact per-experiment stream derivation
/// campaigns use, so a case replays the same faults any campaign would draw.
struct CaseSpec {
  static constexpr const char* kSchema = "fades.diffcase/1";

  std::string name;  // stable identifier, e.g. "bitflip-ff-rtl-007"
  DesignKind kind = DesignKind::Rtl;
  RtlParams rtl;                      // meaningful when kind == Rtl
  std::vector<std::string> program;   // MC8051 source lines, kind == Mc8051
  std::uint64_t runCycles = 48;
  campaign::CampaignSpec inject;

  /// Instruction count of an MC8051 case (lines that are not labels-only,
  /// comments or directives); 0 for RTL cases. The shrink target the
  /// acceptance bar is stated in ("<= 8-instruction reproducer").
  unsigned instructionCount() const;

  obs::Json toJson() const;
  /// Strict parse; throws FadesError(InvalidArgument) naming the bad field.
  static CaseSpec fromJson(const obs::Json& j);

  /// Compact one-line description for logs and reports. Deterministic.
  std::string describe() const;
};

/// Inverse of campaign::toString; throws FadesError(InvalidArgument) on an
/// unknown name (shared with the JSON parser and the fuzz tool's CLI).
campaign::FaultModel faultModelFromString(const std::string& text);
campaign::TargetClass targetClassFromString(const std::string& text);
DesignKind designKindFromString(const std::string& text);

}  // namespace fades::diffcheck
