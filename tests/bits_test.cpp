#include <gtest/gtest.h>

#include "bits/config_port.hpp"
#include "fpga/device.hpp"

namespace fades::bits {
namespace {

using fpga::BramField;
using fpga::CbCoord;
using fpga::CbField;
using fpga::Device;
using fpga::DeviceSpec;
using fpga::FrameAddr;
using fpga::Plane;

TEST(ConfigPort, FrameReadWriteRoundTrip) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  const FrameAddr f{Plane::Logic, 3, 1};
  auto bytes = port.readLogicFrame(f);
  bytes[5] = 0xA5;
  port.writeLogicFrame(f, bytes);
  const auto back = port.readLogicFrame(f);
  EXPECT_EQ(back[5], 0xA5);
}

TEST(ConfigPort, MeterCountsBytesAndOps) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  EXPECT_EQ(port.meter().readOps, 0u);

  (void)port.readLogicFrame(FrameAddr{Plane::Logic, 0, 0});
  EXPECT_EQ(port.meter().readOps, 1u);
  EXPECT_EQ(port.meter().bytesFromDevice, dev.spec().frameBytes);

  auto bytes = port.readLogicFrame(FrameAddr{Plane::Logic, 0, 0});
  port.writeLogicFrame(FrameAddr{Plane::Logic, 0, 0}, bytes);
  EXPECT_EQ(port.meter().writeOps, 1u);
  EXPECT_EQ(port.meter().bytesToDevice, dev.spec().frameBytes);

  port.pulseGsr();
  EXPECT_EQ(port.meter().commandOps, 1u);

  port.beginSession();
  EXPECT_EQ(port.meter().sessions, 1u);

  port.resetMeter();
  EXPECT_EQ(port.meter().readOps, 0u);
  EXPECT_EQ(port.meter().bytesFromDevice, 0u);
}

TEST(ConfigPort, LutHelperDoesReadModifyWriteTraffic) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  const CbCoord cb{4, 4};
  port.setLutTable(cb, 0xBEEF);
  EXPECT_EQ(port.getLutTable(cb), 0xBEEF);
  // RMW traffic happened: at least one read and one write.
  EXPECT_GE(port.meter().readOps, 2u);
  EXPECT_GE(port.meter().writeOps, 1u);
  // And the device agrees bit-by-bit.
  EXPECT_EQ(dev.logicBit(dev.layout().cbLutBit(cb, 0)), true);   // 0xBEEF bit0
  EXPECT_EQ(dev.logicBit(dev.layout().cbLutBit(cb, 4)), false);  // bit4
}

TEST(ConfigPort, CbFieldHelperRoundTrip) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  const CbCoord cb{2, 7};
  EXPECT_FALSE(port.getCbFieldBit(cb, CbField::InvLsr));
  port.setCbFieldBit(cb, CbField::InvLsr, true);
  EXPECT_TRUE(port.getCbFieldBit(cb, CbField::InvLsr));
  EXPECT_TRUE(dev.logicBit(dev.layout().cbFieldBit(cb, CbField::InvLsr)));
  port.setCbFieldBit(cb, CbField::InvLsr, false);
  EXPECT_FALSE(port.getCbFieldBit(cb, CbField::InvLsr));
}

TEST(ConfigPort, BramBitHelperRoundTrip) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  EXPECT_FALSE(port.getBramBit(1, 777));
  port.setBramBit(1, 777, true);
  EXPECT_TRUE(port.getBramBit(1, 777));
  EXPECT_TRUE(dev.bramBit(dev.layout().bramContentBit(1, 777)));
}

TEST(ConfigPort, FullBitstreamMetersWholeImage) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  const auto bs = port.readbackFull();
  EXPECT_EQ(port.meter().bytesFromDevice, dev.layout().totalConfigBytes());
  port.writeFullBitstream(bs);
  EXPECT_EQ(port.meter().bytesToDevice, dev.layout().totalConfigBytes());
}

TEST(BoardLink, CostModelComposition) {
  BoardLink link;
  link.bytesPerSecond = 1e6;
  link.perOpSeconds = 0.01;
  link.perSessionSeconds = 0.2;
  TransferMeter m;
  m.bytesToDevice = 500000;
  m.bytesFromDevice = 500000;
  m.writeOps = 3;
  m.readOps = 2;
  m.commandOps = 1;
  m.sessions = 2;
  EXPECT_NEAR(link.seconds(m), 1.0 + 0.06 + 0.4, 1e-9);
}

TEST(BoardLink, MeterAccumulation) {
  TransferMeter a, b;
  a.bytesToDevice = 10;
  a.writeOps = 1;
  b.bytesToDevice = 5;
  b.sessions = 1;
  a += b;
  EXPECT_EQ(a.bytesToDevice, 15u);
  EXPECT_EQ(a.writeOps, 1u);
  EXPECT_EQ(a.sessions, 1u);
}

TEST(ConfigPort, ReadFfStateViaCapturePlane) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  // Configure a standalone FF preset to 1 and read its state back.
  const CbCoord cb{5, 6};
  dev.setLogicBit(dev.layout().cbFieldBit(cb, CbField::FfUsed), true);
  dev.setLogicBit(dev.layout().cbFieldBit(cb, CbField::SrMode), true);
  dev.pulseGsr();
  EXPECT_TRUE(port.readFfState(cb));
  EXPECT_GE(port.meter().captureOps, 1u);
}

}  // namespace
}  // namespace fades::bits
