// Negotiated-congestion routing (PathFinder-style) over the pass-transistor
// fabric. Each net is a tree from one driver pin to its sink pins; nets
// negotiate for exclusive use of wire segments through rising history and
// present-congestion costs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fpga/layout.hpp"
#include "fpga/spec.hpp"

namespace fades::synth {

struct RouteRequest {
  std::uint32_t source = 0;            // driver pin node
  std::vector<std::uint32_t> sinks;    // sink pin nodes
};

struct RoutedNet {
  /// Adjacent node pairs in the routed tree; each pair maps to exactly one
  /// pass transistor (configuration bit).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  /// All nodes of the tree (source, wire segments, sinks).
  std::vector<std::uint32_t> nodes;
};

struct RouteStats {
  unsigned iterations = 0;
  std::size_t totalWireNodes = 0;
};

/// Route all requests; throws RoutingError if congestion cannot be resolved
/// within maxIterations.
std::vector<RoutedNet> routeAll(const fpga::ConfigLayout& layout,
                                const fpga::RoutingNodes& nodes,
                                const std::vector<RouteRequest>& requests,
                                unsigned maxIterations = 120,
                                RouteStats* stats = nullptr);

}  // namespace fades::synth
