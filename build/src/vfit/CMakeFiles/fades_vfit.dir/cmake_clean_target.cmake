file(REMOVE_RECURSE
  "libfades_vfit.a"
)
