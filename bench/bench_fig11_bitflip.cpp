// Figure 11 (and the eligibility statistics of Section 6.3): outcomes of
// bit-flip emulation into flip-flops and into memory blocks.
//
// The paper first scanned which registers could cause a failure at all
// (14 registers / 81 FFs out of 637 were "eligible"), then confined the
// campaign to those positions: roughly one failure out of two bit-flips in
// the eligible registers, and ~81% failures for the selected memory
// positions. This bench reproduces the two-phase design.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::FaultModel;
using campaign::Outcome;
using campaign::TargetClass;
using netlist::Unit;

int main(int argc, char** argv) {
  BenchRun benchRun("fig11_bitflip", argc, argv);
  System8051 sys;
  sys.printHeadline();
  auto& fades = sys.fades();
  common::Rng rng(2006);

  // ---- Phase 1: locate eligible registers (Section 6.3) -----------------
  const auto allFfs =
      fades.targets(FaultModel::BitFlip, TargetClass::SequentialFF,
                    Unit::None);
  std::vector<std::uint32_t> eligibleFfs;
  std::set<std::string> eligibleRegs;
  // Probe budget comparable to the paper's 3000-fault location scan.
  const int probesPerFf =
      static_cast<int>(std::max<std::size_t>(4, 1500 / allFfs.size()));
  for (auto ff : allFfs) {
    bool causesFailure = false;
    for (int probe = 0; probe < probesPerFf && !causesFailure; ++probe) {
      common::Rng erng = rng.fork(ff * 8 + probe);
      const auto cycle = erng.below(fades.runCycles());
      causesFailure = fades.runExperiment(FaultModel::BitFlip,
                                          TargetClass::SequentialFF, ff,
                                          cycle, 1.0, erng) ==
                      Outcome::Failure;
    }
    if (causesFailure) {
      eligibleFfs.push_back(ff);
      std::string reg = fades.targetName(TargetClass::SequentialFF, ff);
      if (const auto p = reg.find('['); p != std::string::npos) {
        reg = reg.substr(0, p);
      }
      eligibleRegs.insert(reg);
    }
  }
  std::printf(
      "Eligible registers: %zu registers, %zu FFs out of %zu\n"
      "  (paper: 14 registers, 81 FFs out of 637)\n\n",
      eligibleRegs.size(), eligibleFfs.size(), allFfs.size());

  // ---- Phase 1b: locate failure-causing memory positions -----------------
  // "The selected memory positions" of Figure 11: bits whose corruption can
  // reach the outputs (most of the 128 bytes are never read back, so flips
  // there merely linger as latent errors).
  const auto allMem = fades.targets(
      FaultModel::BitFlip, TargetClass::MemoryBlockBit, Unit::None);
  std::vector<std::uint32_t> eligibleMem;
  for (std::size_t k = 0; k < allMem.size(); ++k) {
    common::Rng erng = rng.fork(0x10000 + k);
    const auto cycle = erng.below(fades.runCycles());
    if (fades.runExperiment(FaultModel::BitFlip, TargetClass::MemoryBlockBit,
                            allMem[k], cycle, 1.0, erng) ==
        Outcome::Failure) {
      eligibleMem.push_back(allMem[k]);
    }
  }
  std::printf("Failure-causing memory bits: %zu of %zu\n\n",
              eligibleMem.size(), allMem.size());

  // ---- Phase 2: the Figure 11 campaigns over eligible positions ----------
  const unsigned n = classifyCount();
  auto campaign = [&](const std::vector<std::uint32_t>& pool,
                      TargetClass cls) {
    campaign::CampaignResult result;
    common::Rng crng(42);
    for (unsigned e = 0; e < n; ++e) {
      common::Rng erng = crng.fork(e);
      const auto target = pool[erng.below(pool.size())];
      const auto cycle = erng.below(fades.runCycles());
      double seconds = 0;
      const auto o = fades.runExperiment(FaultModel::BitFlip, cls, target,
                                         cycle, 1.0, erng, &seconds);
      result.add(o, seconds);
    }
    return result;
  };

  const auto ffResult = campaign(eligibleFfs, TargetClass::SequentialFF);
  const auto memResult = campaign(eligibleMem, TargetClass::MemoryBlockBit);

  printTable(
      "Figure 11 - bit-flip outcomes, % failure / latent / silent (" +
          std::to_string(n) + " faults each)",
      {"target", "failure %", "latent %", "silent %", "paper failure %"},
      {{"registers (eligible FFs)", common::fixed(ffResult.failurePct(), 1),
        common::fixed(ffResult.latentPct(), 1),
        common::fixed(ffResult.silentPct(), 1), "43.86"},
       {"memory (selected positions)",
        common::fixed(memResult.failurePct(), 1),
        common::fixed(memResult.latentPct(), 1),
        common::fixed(memResult.silentPct(), 1), "80.95"}});
  return 0;
}
