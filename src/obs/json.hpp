// Minimal JSON document model for the observability layer.
//
// Everything the telemetry subsystem exports - metrics snapshots, Chrome
// trace files, run artifacts - is built as a Json tree and serialized
// through dump(). Objects preserve insertion order so artifact schemas stay
// byte-stable across runs, and parse() exists so tests can round-trip what
// the writers produce. No external dependency; the container toolchain has
// no JSON library baked in.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fades::obs {

class Json {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double d) : type_(Type::Number), num_(d) {}
  Json(int i) : Json(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : Json(static_cast<std::uint64_t>(u)) {}
  Json(long long i) : Json(static_cast<std::int64_t>(i)) {}
  Json(unsigned long long u) : Json(static_cast<std::uint64_t>(u)) {}
  Json(std::int64_t i)
      : type_(Type::Number), num_(static_cast<double>(i)), int_(i),
        isInt_(true) {}
  Json(std::uint64_t u)
      : type_(Type::Number), num_(static_cast<double>(u)),
        int_(static_cast<std::int64_t>(u)), isInt_(true), isUnsigned_(true) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json array() { return Json(Type::Array); }
  static Json object() { return Json(Type::Object); }

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::Null; }
  bool isObject() const { return type_ == Type::Object; }
  bool isArray() const { return type_ == Type::Array; }
  bool isNumber() const { return type_ == Type::Number; }
  bool isString() const { return type_ == Type::String; }

  bool asBool() const { return bool_; }
  double asNumber() const { return num_; }
  std::int64_t asInt() const { return isInt_ ? int_ : static_cast<std::int64_t>(num_); }
  const std::string& asString() const { return str_; }

  // --- array -------------------------------------------------------------
  void push(Json value) {
    type_ = Type::Array;
    items_.push_back(std::move(value));
  }
  const std::vector<Json>& items() const { return items_; }

  // --- object (ordered) ----------------------------------------------------
  /// Insert or overwrite a member; insertion order is serialization order.
  Json& set(const std::string& key, Json value);
  /// Member lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  std::size_t size() const {
    return type_ == Type::Array ? items_.size() : members_.size();
  }

  /// Serialize; indent 0 = compact one-liner, otherwise pretty-printed.
  std::string dump(int indent = 0) const;

  /// Strict parser for tests and artifact readers. Returns nullopt on
  /// malformed input and stores a short diagnostic in *error.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

  /// JSON string escaping, exposed for writers that stream directly.
  static std::string escape(std::string_view s);

 private:
  explicit Json(Type t) : type_(t) {}
  void dumpTo(std::string& out, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool isInt_ = false;
  bool isUnsigned_ = false;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace fades::obs
