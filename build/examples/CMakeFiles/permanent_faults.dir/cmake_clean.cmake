file(REMOVE_RECURSE
  "CMakeFiles/permanent_faults.dir/permanent_faults.cpp.o"
  "CMakeFiles/permanent_faults.dir/permanent_faults.cpp.o.d"
  "permanent_faults"
  "permanent_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permanent_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
