#include "common/bitvector.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace fades::common {

BitVector::BitVector(std::size_t bitCount, bool fill)
    : bitCount_(bitCount), words_((bitCount + 63) / 64, fill ? ~0ULL : 0ULL) {
  if (fill && (bitCount & 63) != 0) {
    // Keep unused high bits zero so operator== and popcount stay exact.
    words_.back() &= (1ULL << (bitCount & 63)) - 1;
  }
}

void BitVector::clearAll() { std::fill(words_.begin(), words_.end(), 0ULL); }

void BitVector::setAll() {
  std::fill(words_.begin(), words_.end(), ~0ULL);
  if ((bitCount_ & 63) != 0 && !words_.empty()) {
    words_.back() &= (1ULL << (bitCount_ & 63)) - 1;
  }
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

void BitVector::copyBits(const BitVector& src, std::size_t srcOff,
                         BitVector& dst, std::size_t dstOff, std::size_t n) {
  assert(srcOff + n <= src.size() && dstOff + n <= dst.size());
  for (std::size_t k = 0; k < n; ++k) dst.set(dstOff + k, src.get(srcOff + k));
}

std::vector<std::uint8_t> BitVector::exportBytes(std::size_t bitOff,
                                                 std::size_t n) const {
  assert(bitOff + n <= bitCount_);
  std::vector<std::uint8_t> out((n + 7) / 8, 0);
  for (std::size_t k = 0; k < n; ++k) {
    if (get(bitOff + k)) out[k >> 3] |= static_cast<std::uint8_t>(1u << (k & 7));
  }
  return out;
}

void BitVector::importBytes(std::size_t bitOff, std::size_t n,
                            std::span<const std::uint8_t> bytes) {
  assert(bitOff + n <= bitCount_);
  assert(bytes.size() >= (n + 7) / 8);
  for (std::size_t k = 0; k < n; ++k) {
    set(bitOff + k, (bytes[k >> 3] >> (k & 7)) & 1u);
  }
}

std::uint64_t BitVector::getWord(std::size_t bitOff, unsigned n) const {
  assert(n <= 64 && bitOff + n <= bitCount_);
  std::uint64_t v = 0;
  for (unsigned k = 0; k < n; ++k) {
    v |= static_cast<std::uint64_t>(get(bitOff + k)) << k;
  }
  return v;
}

void BitVector::setWord(std::size_t bitOff, unsigned n, std::uint64_t value) {
  assert(n <= 64 && bitOff + n <= bitCount_);
  for (unsigned k = 0; k < n; ++k) set(bitOff + k, (value >> k) & 1ULL);
}

std::vector<std::size_t> BitVector::diff(const BitVector& other) const {
  assert(bitCount_ == other.bitCount_);
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t x = words_[w] ^ other.words_[w];
    while (x != 0) {
      const int b = std::countr_zero(x);
      out.push_back(w * 64 + static_cast<std::size_t>(b));
      x &= x - 1;
    }
  }
  return out;
}

std::string BitVector::toString(std::size_t bitOff, std::size_t n) const {
  std::string s;
  s.reserve(n);
  for (std::size_t k = 0; k < n; ++k) s.push_back(get(bitOff + k) ? '1' : '0');
  return s;
}

}  // namespace fades::common
