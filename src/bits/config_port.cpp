#include "bits/config_port.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "common/error.hpp"

namespace fades::bits {

using common::ErrorKind;
using common::require;
using fpga::Plane;

// ---------------------------------------------------------------------------
// Frame transaction shadow
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Unreliable-link model
// ---------------------------------------------------------------------------

void ConfigPort::linkTransfer(LinkOp op, std::uint64_t bytes) {
  // One uniform01 draw per attempt from the dedicated link stream. The
  // experiment RNG is never touched here, and the logical operation sequence
  // is identical with the frame cache on or off, so the draw sequence - and
  // therefore every fault and retry - is a pure function of the seed passed
  // to seedLinkStream().
  const bool isRead = op == LinkOp::Read || op == LinkOp::Capture;
  const double rate =
      linkFaults_.timeoutRate +
      (isRead ? linkFaults_.readCrcRate : linkFaults_.writeFailRate);
  double backoff = retry_.backoffBaseSeconds;
  for (unsigned attempt = 0;; ++attempt) {
    if (linkRng_.uniform01() >= rate) return;  // attempt went through
    ++meter_.linkFaults;
    cLinkFaults_.inc();
    if (attempt >= retry_.maxRetries) {
      common::raise(ErrorKind::LinkError,
                    std::string(isRead ? "readback CRC mismatch"
                                       : "transient write failure") +
                        " persisted through " +
                        std::to_string(retry_.maxRetries) + " retries");
    }
    // Re-issue with backoff. The cost lands in the retry-only meter fields,
    // which BoardLink::seconds() ignores: modeled experiment time stays
    // bit-identical to a fault-free run.
    ++meter_.retryOps;
    meter_.retryBytes += bytes;
    meter_.retryBackoffSeconds += backoff;
    backoff = std::min(backoff * retry_.backoffFactor,
                       retry_.backoffCapSeconds);
    cRetries_.inc();
  }
}

void ConfigPort::setCacheEnabled(bool on) {
  if (!on && cacheEnabled_) {
    invalidate();
    inTransaction_ = false;
  }
  cacheEnabled_ = on;
}

void ConfigPort::sync() {
  if (shadow_.empty()) return;
  // std::map iteration order == ascending FrameKey, so the coalesced
  // write-back is deterministic regardless of the access pattern that built
  // the shadow. Flushing charges nothing: every logical operation that
  // dirtied these frames was metered when it happened.
  std::uint64_t flushed = 0;
  std::uint64_t evicted = 0;
  for (auto it = shadow_.begin(); it != shadow_.end();) {
    const auto& key = it->first;
    ShadowFrame& frame = it->second;
    const auto plane = static_cast<fpga::Plane>(std::get<0>(key));
    if (frame.dirty) {
      if (plane == Plane::Logic) {
        // Differential write-back: the shadow holds the device's previous
        // frame content, so only changed bits travel. By value this is
        // identical to a full frame write (Device::writeLogicFrame ignores
        // per-bit no-ops), it just skips the untouched payload.
        const FrameAddr f{Plane::Logic, std::get<1>(key), std::get<2>(key)};
        const std::size_t firstBit = dev_.layout().logicFrameFirstBit(f);
        const unsigned nBytes =
            (dev_.layout().logicFrameBitCount(f) + 7u) / 8u;
        for (unsigned b = 0; b < nBytes; ++b) {
          unsigned diff = frame.bytes[b] ^ frame.orig[b];
          while (diff != 0) {
            const unsigned r = static_cast<unsigned>(std::countr_zero(diff));
            dev_.setLogicBit(firstBit + b * 8u + r,
                             (frame.bytes[b] >> r) & 1u);
            diff &= diff - 1;
          }
        }
      } else if (plane == Plane::BramContent) {
        dev_.writeBramFrame(std::get<1>(key), std::get<2>(key), frame.bytes);
      }
      // Capture-plane frames are read-only and never marked dirty.
      ++flushed;
      frame.orig = frame.bytes;
      frame.dirty = false;
    }
    if (plane == Plane::Logic) {
      // The logic configuration plane only changes through this port (full
      // downloads and the direct-write escape hatch call invalidate()), so
      // the now-clean shadow stays valid and keeps serving reads. Capture
      // and BRAM-content frames mirror run-time state that the next
      // settle/step/GSR pulse rewrites, so those are dropped.
      ++it;
    } else {
      ++evicted;
      it = shadow_.erase(it);
    }
  }
  if (flushed != 0) cCacheFlushed_.add(flushed);
  if (evicted != 0) cCacheEvicted_.add(evicted);
}

void ConfigPort::invalidate() {
  sync();
  if (!shadow_.empty()) {
    cCacheEvicted_.add(shadow_.size());
    shadow_.clear();
  }
}

ConfigPort::ShadowFrame& ConfigPort::shadowFor(const FrameKey& key) {
  auto it = shadow_.find(key);
  if (it != shadow_.end()) {
    cCacheHits_.inc();
    return it->second;
  }
  cCacheMisses_.inc();
  ShadowFrame& frame = shadow_[key];
  frame.bytes.resize(dev_.spec().frameBytes, 0);
  const auto plane = static_cast<fpga::Plane>(std::get<0>(key));
  if (plane == Plane::Logic) {
    dev_.readLogicFrameInto(
        FrameAddr{Plane::Logic, std::get<1>(key), std::get<2>(key)},
        frame.bytes);
  } else if (plane == Plane::BramContent) {
    dev_.readBramFrameInto(std::get<1>(key), std::get<2>(key), frame.bytes);
  } else {
    dev_.readCaptureFrameInto(std::get<1>(key), frame.bytes);
  }
  frame.orig = frame.bytes;
  return frame;
}

void ConfigPort::shadowStore(const FrameKey& key,
                             std::span<const std::uint8_t> bytes,
                             unsigned payloadBits) {
  ShadowFrame& frame = shadow_[key];
  const unsigned frameBytes = dev_.spec().frameBytes;
  if (frame.orig.empty()) {
    // First touch is a write: snapshot the current device content so the
    // flush can write back differentially. This internal host-side read is
    // unmetered - the logical write was already charged in full.
    frame.orig.resize(frameBytes, 0);
    const auto plane = static_cast<fpga::Plane>(std::get<0>(key));
    if (plane == Plane::Logic) {
      dev_.readLogicFrameInto(
          FrameAddr{Plane::Logic, std::get<1>(key), std::get<2>(key)},
          frame.orig);
    } else if (plane == Plane::BramContent) {
      dev_.readBramFrameInto(std::get<1>(key), std::get<2>(key), frame.orig);
    }
  }
  frame.bytes.assign(frameBytes, 0);
  const std::size_t n =
      std::min<std::size_t>(bytes.size(), (payloadBits + 7u) / 8u);
  std::copy(bytes.begin(), bytes.begin() + n, frame.bytes.begin());
  if ((payloadBits & 7u) != 0 && n == (payloadBits + 7u) / 8u) {
    // Mask pad bits past the payload so shadow reads match what a device
    // write + read-back round-trip would return.
    frame.bytes[n - 1] &=
        static_cast<std::uint8_t>((1u << (payloadBits & 7u)) - 1);
  }
  // A write that lands the device's existing content needs no flush at all.
  frame.dirty = frame.bytes != frame.orig;
}

std::vector<std::uint8_t> ConfigPort::mirrorLogicFrame(FrameAddr f) {
  if (shadowActive()) {
    const auto it = shadow_.find(logicKey(f));
    if (it != shadow_.end()) return it->second.bytes;
  }
  return dev_.readLogicFrame(f);
}

// ---------------------------------------------------------------------------
// Frame-level transfers
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> ConfigPort::readLogicFrame(FrameAddr f) {
  noteRead(dev_.spec().frameBytes);
  if (shadowActive()) return shadowFor(logicKey(f)).bytes;
  return dev_.readLogicFrame(f);
}

void ConfigPort::writeLogicFrame(FrameAddr f,
                                 std::span<const std::uint8_t> bytes) {
  noteWrite(bytes.size());
  if (shadowActive()) {
    const unsigned payloadBits = dev_.layout().logicFrameBitCount(f);
    require(bytes.size() >= (payloadBits + 7u) / 8u, ErrorKind::ConfigError,
            "short logic frame payload");
    shadowStore(logicKey(f), bytes, payloadBits);
    return;
  }
  // Out-of-transaction write: keep any retained logic shadow honest.
  if (!shadow_.empty()) shadow_.erase(logicKey(f));
  dev_.writeLogicFrame(f, bytes);
}

std::vector<std::uint8_t> ConfigPort::readBramFrame(unsigned block,
                                                    unsigned minor) {
  noteRead(dev_.spec().frameBytes);
  if (shadowActive()) return shadowFor(bramKey(block, minor)).bytes;
  return dev_.readBramFrame(block, minor);
}

void ConfigPort::writeBramFrame(unsigned block, unsigned minor,
                                std::span<const std::uint8_t> bytes) {
  noteWrite(bytes.size());
  if (shadowActive()) {
    const auto& layout = dev_.layout();
    require(block < dev_.spec().memBlocks &&
                minor < layout.bramFramesPerBlock(),
            ErrorKind::ConfigError, "bad bram frame address");
    const std::size_t payloadBits =
        std::min<std::size_t>(layout.frameBits(),
                              std::size_t{dev_.spec().memBlockBits} -
                                  std::size_t{minor} * layout.frameBits());
    require(bytes.size() >= (payloadBits + 7u) / 8u, ErrorKind::ConfigError,
            "short bram frame payload");
    shadowStore(bramKey(block, minor), bytes,
                static_cast<unsigned>(payloadBits));
    return;
  }
  dev_.writeBramFrame(block, minor, bytes);
}

std::vector<std::uint8_t> ConfigPort::readCaptureFrame(unsigned col) {
  noteCapture(dev_.spec().frameBytes);
  if (shadowActive()) return shadowFor(captureKey(col)).bytes;
  return dev_.readCaptureFrame(col);
}

void ConfigPort::writeFullBitstream(const fpga::Bitstream& bs) {
  invalidate();  // a full download supersedes pending writes AND shadows
  dev_.writeFullBitstream(bs);
  noteWrite(dev_.layout().totalConfigBytes());
}

fpga::Bitstream ConfigPort::readbackFull() {
  sync();  // read-back must observe pending frame writes
  auto bs = dev_.readbackBitstream();
  noteRead(dev_.layout().totalConfigBytes());
  return bs;
}

void ConfigPort::pulseGsr() {
  sync();  // pending SrMode writes must land before the pulse
  dev_.pulseGsr();
  noteCommand(8);  // control packet
}

// ---------------------------------------------------------------------------
// Helpers (each does genuine frame traffic)
// ---------------------------------------------------------------------------

std::uint16_t ConfigPort::getLutTable(CbCoord cb) {
  const auto& layout = dev_.layout();
  std::uint16_t table = 0;
  std::size_t bit = layout.cbLutBit(cb, 0);
  unsigned k = 0;
  while (k < 16) {
    const FrameAddr f = layout.frameOfLogicBit(bit);
    const auto bytes = readLogicFrame(f);
    const std::size_t first = layout.logicFrameFirstBit(f);
    const unsigned inFrame = layout.logicFrameBitCount(f);
    while (k < 16 && bit - first < inFrame) {
      const std::size_t rel = bit - first;
      if ((bytes[rel >> 3] >> (rel & 7)) & 1u) {
        table |= static_cast<std::uint16_t>(1u << k);
      }
      ++k;
      ++bit;
    }
  }
  return table;
}

void ConfigPort::setLutTable(CbCoord cb, std::uint16_t table) {
  const auto& layout = dev_.layout();
  std::size_t bit = layout.cbLutBit(cb, 0);
  unsigned k = 0;
  while (k < 16) {
    const FrameAddr f = layout.frameOfLogicBit(bit);
    auto bytes = readLogicFrame(f);
    const std::size_t first = layout.logicFrameFirstBit(f);
    const unsigned inFrame = layout.logicFrameBitCount(f);
    while (k < 16 && bit - first < inFrame) {
      const std::size_t rel = bit - first;
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << (rel & 7));
      if ((table >> k) & 1u) {
        bytes[rel >> 3] |= mask;
      } else {
        bytes[rel >> 3] &= static_cast<std::uint8_t>(~mask);
      }
      ++k;
      ++bit;
    }
    writeLogicFrame(f, bytes);
  }
}

bool ConfigPort::getLogicBit(std::size_t addr) {
  const auto& layout = dev_.layout();
  const FrameAddr f = layout.frameOfLogicBit(addr);
  const auto bytes = readLogicFrame(f);
  const std::size_t rel = addr - layout.logicFrameFirstBit(f);
  return (bytes[rel >> 3] >> (rel & 7)) & 1u;
}

void ConfigPort::rmwLogicBit(std::size_t addr, bool value) {
  const auto& layout = dev_.layout();
  const FrameAddr f = layout.frameOfLogicBit(addr);
  auto bytes = readLogicFrame(f);
  const std::size_t rel = addr - layout.logicFrameFirstBit(f);
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << (rel & 7));
  if (value) {
    bytes[rel >> 3] |= mask;
  } else {
    bytes[rel >> 3] &= static_cast<std::uint8_t>(~mask);
  }
  writeLogicFrame(f, bytes);
}

void ConfigPort::setLogicBit(std::size_t addr, bool value) {
  rmwLogicBit(addr, value);
}

unsigned ConfigPort::setLogicBits(
    std::span<const std::pair<std::size_t, bool>> updates) {
  const auto& layout = dev_.layout();
  // Group updates by frame so each frame is transferred exactly once.
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<std::pair<std::size_t, bool>>>
      byFrame;
  for (const auto& u : updates) {
    const FrameAddr f = layout.frameOfLogicBit(u.first);
    byFrame[{f.major, f.minor}].push_back(u);
  }
  for (const auto& [key, list] : byFrame) {
    const FrameAddr f{Plane::Logic, key.first, key.second};
    auto bytes = readLogicFrame(f);
    const std::size_t first = layout.logicFrameFirstBit(f);
    for (const auto& [addr, value] : list) {
      const std::size_t rel = addr - first;
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << (rel & 7));
      if (value) {
        bytes[rel >> 3] |= mask;
      } else {
        bytes[rel >> 3] &= static_cast<std::uint8_t>(~mask);
      }
    }
    writeLogicFrame(f, bytes);
  }
  return static_cast<unsigned>(byFrame.size());
}

void ConfigPort::updateCbFields(
    CbCoord cb, std::span<const std::pair<CbField, bool>> fields) {
  std::vector<std::pair<std::size_t, bool>> updates;
  updates.reserve(fields.size());
  for (const auto& [field, value] : fields) {
    updates.emplace_back(dev_.layout().cbFieldBit(cb, field), value);
  }
  setLogicBits(updates);
}

void ConfigPort::setLogicBitsBlind(
    std::span<const std::pair<std::size_t, bool>> updates) {
  const auto& layout = dev_.layout();
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<std::pair<std::size_t, bool>>>
      byFrame;
  for (const auto& u : updates) {
    const FrameAddr f = layout.frameOfLogicBit(u.first);
    byFrame[{f.major, f.minor}].push_back(u);
  }
  for (const auto& [key, list] : byFrame) {
    const FrameAddr f{Plane::Logic, key.first, key.second};
    // Frame contents come from the host-side mirror (== device config,
    // overlaid with any pending shadow writes of the open transaction).
    auto bytes = mirrorLogicFrame(f);
    const std::size_t first = layout.logicFrameFirstBit(f);
    for (const auto& [addr, value] : list) {
      const std::size_t rel = addr - first;
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << (rel & 7));
      if (value) {
        bytes[rel >> 3] |= mask;
      } else {
        bytes[rel >> 3] &= static_cast<std::uint8_t>(~mask);
      }
    }
    writeLogicFrame(f, bytes);
  }
}

void ConfigPort::setLutTableBlind(CbCoord cb, std::uint16_t table) {
  std::vector<std::pair<std::size_t, bool>> updates;
  updates.reserve(16);
  for (unsigned i = 0; i < 16; ++i) {
    updates.emplace_back(dev_.layout().cbLutBit(cb, i), (table >> i) & 1u);
  }
  setLogicBitsBlind(updates);
}

void ConfigPort::updateCbFieldsBlind(
    CbCoord cb, std::span<const std::pair<CbField, bool>> fields) {
  std::vector<std::pair<std::size_t, bool>> updates;
  updates.reserve(fields.size());
  for (const auto& [field, value] : fields) {
    updates.emplace_back(dev_.layout().cbFieldBit(cb, field), value);
  }
  setLogicBitsBlind(updates);
}

bool ConfigPort::getCbFieldBit(CbCoord cb, CbField field) {
  return getLogicBit(dev_.layout().cbFieldBit(cb, field));
}

void ConfigPort::setCbFieldBit(CbCoord cb, CbField field, bool value) {
  rmwLogicBit(dev_.layout().cbFieldBit(cb, field), value);
}

bool ConfigPort::readFfState(CbCoord cb) {
  const auto bytes = readCaptureFrame(cb.x);
  return (bytes[cb.y >> 3] >> (cb.y & 7)) & 1u;
}

bool ConfigPort::getBramBit(unsigned block, unsigned bit) {
  const auto& layout = dev_.layout();
  const FrameAddr f = layout.frameOfBramBit(block, bit);
  const auto bytes = readBramFrame(block, f.minor);
  const unsigned rel = bit - f.minor * layout.frameBits();
  return (bytes[rel >> 3] >> (rel & 7)) & 1u;
}

void ConfigPort::setBramBit(unsigned block, unsigned bit, bool value) {
  const auto& layout = dev_.layout();
  const FrameAddr f = layout.frameOfBramBit(block, bit);
  auto bytes = readBramFrame(block, f.minor);
  const unsigned rel = bit - f.minor * layout.frameBits();
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << (rel & 7));
  if (value) {
    bytes[rel >> 3] |= mask;
  } else {
    bytes[rel >> 3] &= static_cast<std::uint8_t>(~mask);
  }
  writeBramFrame(block, f.minor, bytes);
}

}  // namespace fades::bits
