// Autonomous emulation vs run-time reconfiguration (RTR), the trade the
// paper's related work weighs: compile masks and golden-state shadows into
// the design (area overhead, zero configuration traffic per injection)
// against FADES' instrument-free RTR injection (no area overhead, frame
// traffic per injection). Reported per fault model on the shared MC8051 +
// Bubblesort system: modeled per-injection time for both injectors and the
// resulting speed-up, plus the exact area overhead the instrumentation
// pass returns.
#include <cstdio>

#include "bench_common.hpp"
#include "core/autonomous.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::CampaignSpec;
using campaign::DurationBand;
using campaign::FaultModel;
using campaign::TargetClass;

namespace {

CampaignSpec makeSpec(FaultModel m, TargetClass c, unsigned n) {
  CampaignSpec spec;
  spec.model = m;
  spec.targets = c;
  spec.band = DurationBand::shortBand();
  spec.experiments = n;
  spec.seed = 11;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun benchRun("autonomous_speedup", argc, argv);
  System8051 sys;
  sys.printHeadline();
  auto& rtr = sys.fades();
  core::AutonomousTool aut(sys.netlist(), sys.workload().cycles);
  const unsigned n = timingCount(60);

  // Area overhead: what the autonomous injector costs before the first
  // fault - RTR's instrument-free baseline is zero by construction.
  const auto& model = aut.model();
  const auto& stats = sys.implementation().stats;
  printTable(
      "Autonomous instrumentation area overhead (RTR overhead: none)",
      {"quantity", "base design", "added", "relative"},
      {{"gates (LUT-mapped)", std::to_string(stats.luts),
        std::to_string(model.addedGates),
        common::fixed(100.0 * model.addedGates / stats.luts, 1) + " %"},
       {"flip-flops", std::to_string(stats.flops),
        std::to_string(model.addedFlops),
        common::fixed(100.0 * model.addedFlops / stats.flops, 1) + " %"},
       {"memory bits (shadow copies)", "-",
        std::to_string(model.shadowRamBits), "-"},
       {"mask-chain bits", "-", std::to_string(model.chainBits), "-"},
       {"restore sweep (cycles)", "-", std::to_string(aut.restoreCycles()),
        "-"}});

  struct Row {
    std::string label;
    FaultModel model;
    TargetClass targets;
  };
  const Row kRows[] = {
      {"bit-flip / FFs", FaultModel::BitFlip, TargetClass::SequentialFF},
      {"bit-flip / memory blocks", FaultModel::BitFlip,
       TargetClass::MemoryBlockBit},
      {"pulse / combinational", FaultModel::Pulse,
       TargetClass::CombinationalLut},
      {"indetermination / sequential", FaultModel::Indetermination,
       TargetClass::SequentialFF},
      {"indetermination / combinational", FaultModel::Indetermination,
       TargetClass::CombinationalLut},
  };

  std::vector<std::vector<std::string>> rows;
  double rtrSum = 0, autSum = 0;
  for (const auto& r : kRows) {
    const auto spec = makeSpec(r.model, r.targets, n);
    const auto rtrRes = bench::runCampaign(rtr, spec);
    const auto autRes = aut.runCampaign(spec);
    recordCampaign("rtr, " + r.label, rtrRes);
    recordCampaign("autonomous, " + r.label, autRes);
    const double rtrSec = rtrRes.modeledSeconds.mean();
    const double autSec = autRes.modeledSeconds.mean();
    rtrSum += rtrSec;
    autSum += autSec;
    rows.push_back({r.label, common::fixed(rtrSec * 1e3, 3),
                    common::fixed(autSec * 1e3, 3),
                    common::fixed(rtrSec / autSec, 2)});
  }
  const double speedup = rtrSum / autSum;
  rows.push_back({"mean (all models above)",
                  common::fixed(rtrSum / 5 * 1e3, 3),
                  common::fixed(autSum / 5 * 1e3, 3),
                  common::fixed(speedup, 2)});
  printTable(
      "Per-injection modeled time - RTR (FADES) vs autonomous emulation",
      {"fault model / target", "RTR (ms)", "autonomous (ms)", "speed-up"},
      rows);
  recordScalar("modeled_speedup", speedup);
  std::printf(
      "Autonomous injection moves 0 configuration bytes; its overhead is "
      "%u chain bits + %llu restore cycles at the emulator clock.\n",
      model.chainBits,
      static_cast<unsigned long long>(aut.restoreCycles()));
  return 0;
}
