# Empty compiler generated dependencies file for test_mc8051.
# This may be replaced when dependencies are built.
