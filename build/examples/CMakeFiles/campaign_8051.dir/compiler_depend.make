# Empty compiler generated dependencies file for campaign_8051.
# This may be replaced when dependencies are built.
