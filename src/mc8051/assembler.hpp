// Two-pass text assembler for the MC8051 subset.
//
// Syntax (case-insensitive mnemonics, ';' comments, one statement per line):
//
//   start:  MOV  A, #0x10      ; immediate
//           MOV  R0, #data     ; symbols usable as constants
//           ADD  A, @R0        ; indirect
//           MOV  0x30, A       ; direct address
//           DJNZ R2, start     ; relative branches take label targets
//           LCALL subroutine
//           SJMP  $            ; '$' = this instruction (idle loop)
//   data:   .equ 0x30          ; constant definition
//           .org 0x40          ; set location counter
//           .db  1, 2, 0x33    ; raw bytes
//
// SFR names (A/ACC, B, PSW, SP, DPL, DPH, P0, P1) are accepted wherever a
// direct address is expected.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fades::mc8051 {

struct AssembledProgram {
  std::vector<std::uint8_t> bytes;
  /// Label name/value pairs for test introspection.
  std::vector<std::pair<std::string, std::uint16_t>> symbols;

  std::uint16_t symbol(const std::string& name) const;
};

/// Assemble source text; throws FadesError(WorkloadError) with a line number
/// on syntax errors, unknown mnemonics or out-of-range branches.
AssembledProgram assemble(const std::string& source);

}  // namespace fades::mc8051
