// fades.wire/1 - the framing layer of the distributed campaign service.
//
// One TCP connection carries a sequence of frames; each frame is a 4-byte
// big-endian length followed by exactly that many bytes of compact JSON (one
// message object). Length-prefixed framing keeps the parser trivial and the
// failure modes enumerable: a frame whose length exceeds kMaxFrameBytes is
// rejected before any allocation (an adversarial or corrupt peer cannot make
// the receiver grow without bound), a peer that stalls mid-frame trips the
// read timeout instead of wedging the thread, and a clean EOF between frames
// is an ordinary disconnect, not an error.
//
// The payload vocabulary (message types, field names) lives with the
// coordinator and worker; this header only moves framed JSON and owns the
// loopback socket plumbing. Everything is plain POSIX sockets - the service
// is built for lab-LAN / loopback scale, matching the paper's experiment
// set-up of one host driving board replicas.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace fades::service {

/// Schema tag carried in every hello message; a peer speaking anything else
/// is rejected at the handshake.
inline constexpr const char* kWireSchema = "fades.wire/1";

/// Hard ceiling on one frame's payload. A complete-block message for a
/// record-keeping campaign block runs a few hundred KiB; 8 MiB leaves ample
/// headroom while still bounding what a hostile length prefix can demand.
inline constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

/// FNV-1a 64-bit, hex-encoded. Used for job-spec fingerprints, block result
/// digests and content addresses in the artifact store; stability across
/// processes matters (digests from different workers are compared), speed
/// and crypto strength do not.
std::string fnv1a64Hex(std::string_view text);

/// Owning socket fd. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

/// Loopback listener. Binds 127.0.0.1:`port` (0 picks an ephemeral port,
/// which port() then reports) and accepts connections with a bounded wait so
/// accept loops can poll a stop flag.
class Listener {
 public:
  explicit Listener(std::uint16_t port);

  std::uint16_t port() const { return port_; }

  /// Wait up to `timeoutMs` for one connection; an invalid Socket means the
  /// timeout elapsed (not an error).
  Socket accept(int timeoutMs);

  void close() { sock_.close(); }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connect to host:port, failing with LinkError after `timeoutMs`.
Socket connectTo(const std::string& host, std::uint16_t port, int timeoutMs);

/// True when `s` has readable data (or EOF) within `timeoutMs`.
bool waitReadable(const Socket& s, int timeoutMs);

/// Send one frame. Raises LinkError on a broken or persistently stalled
/// peer. When `bytesStreamed` is set, the frame's full size (header +
/// payload) is added to it.
void sendMessage(const Socket& s, const obs::Json& message,
                 obs::Counter* bytesStreamed = nullptr);

/// Receive one frame. Returns nullopt on clean EOF at a frame boundary;
/// raises LinkError on a mid-frame EOF, a read stalled past `timeoutMs`, an
/// oversized length prefix, or a payload that is not one JSON object.
std::optional<obs::Json> recvMessage(const Socket& s, int timeoutMs,
                                     obs::Counter* bytesStreamed = nullptr);

}  // namespace fades::service
