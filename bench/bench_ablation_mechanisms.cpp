// Ablation (paper Table 1 / Section 4.3-4.4 design choices):
//  * fan-out increase vs reroute for delay faults - the fan-out mechanism
//    adds tiny capacitive delays ("good for small delays"), rerouting adds
//    whole extra segments ("good for large delays");
//  * fixed vs oscillating indetermination values - re-randomizing every
//    cycle multiplies reconfiguration traffic (Section 6.2: ~1065 s vs
//    ~4605 s for long faults).
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::CampaignSpec;
using campaign::DurationBand;
using campaign::FaultModel;
using campaign::TargetClass;
using netlist::Unit;

int main(int argc, char** argv) {
  BenchRun benchRun("ablation_mechanisms", argc, argv);
  System8051 sys;
  sys.printHeadline();
  const unsigned n = std::min(timingCount(50), 50u);

  // --- delay mechanism comparison ----------------------------------------
  fpga::Device probe(sys.implementation().spec);
  probe.writeFullBitstream(sys.implementation().bitstream);
  probe.setTimingEnabled(true);
  probe.settle();
  fpga::DeviceSpec spec = sys.implementation().spec;
  spec.clockPeriodNs =
      probe.timingReport().maxArrivalNs + spec.ffSetupNs + 0.35;

  auto delayCampaign = [&](core::DelayVia via) {
    core::FadesOptions opt = sys.fadesOptions();
    opt.delayVia = via;
    opt.fullDownloadForDelay = false;
    fpga::Device dev(spec);
    core::FadesTool tool(dev, sys.implementation(), sys.workload().cycles,
                         opt);
    CampaignSpec cs;
    cs.model = FaultModel::Delay;
    cs.targets = TargetClass::CombinationalLine;
    cs.band = DurationBand::longBand();
    cs.experiments = n;
    cs.seed = 31;
    return bench::runCampaign(tool, cs);
  };
  const auto fan = delayCampaign(core::DelayVia::Fanout);
  const auto reroute = delayCampaign(core::DelayVia::Reroute);
  const auto shift = delayCampaign(core::DelayVia::ShiftRegister);

  printTable("Ablation - delay mechanism (duration 11-20 cycles, " +
                 std::to_string(n) + " faults each)",
             {"mechanism", "failure %", "latent %", "silent %"},
             {{"fan-out increase (~0.01-0.05 ns, Fig. 8)",
               common::fixed(fan.failurePct(), 1),
               common::fixed(fan.latentPct(), 1),
               common::fixed(fan.silentPct(), 1)},
              {"reroute through longer path (~1-10 ns)",
               common::fixed(reroute.failurePct(), 1),
               common::fixed(reroute.latentPct(), 1),
               common::fixed(reroute.silentPct(), 1)},
              {"shift register through unused FFs (cycle-scale, Fig. 7)",
               common::fixed(shift.failurePct(), 1),
               common::fixed(shift.latentPct(), 1),
               common::fixed(shift.silentPct(), 1)}});
  std::printf("Delay magnitude governs severity: capacitive fan-out loads "
              "never violate setup on this design, wire detours rarely do, "
              "whole-cycle shifts do measurably.\n\n");

  // --- indetermination value policy ----------------------------------------
  auto indetCampaign = [&](bool oscillating) {
    core::FadesOptions opt = sys.fadesOptions();
    opt.oscillatingIndetermination = oscillating;
    fpga::Device dev(sys.implementation().spec);
    core::FadesTool tool(dev, sys.implementation(), sys.workload().cycles,
                         opt);
    CampaignSpec cs;
    cs.model = FaultModel::Indetermination;
    cs.targets = TargetClass::SequentialFF;
    cs.band = DurationBand::longBand();
    cs.experiments = n;
    cs.seed = 33;
    return bench::runCampaign(tool, cs);
  };
  const auto fixed = indetCampaign(false);
  const auto osc = indetCampaign(true);

  printTable(
      "Ablation - indetermination value policy (duration 11-20 cycles)",
      {"policy", "mean s/fault", "scaled 3000 faults (s)", "failure %"},
      {{"fixed final value", common::fixed(fixed.modeledSeconds.mean(), 3),
        common::fixed(fixed.modeledSeconds.mean() * 3000, 0),
        common::fixed(fixed.failurePct(), 1)},
       {"re-randomized every cycle",
        common::fixed(osc.modeledSeconds.mean(), 3),
        common::fixed(osc.modeledSeconds.mean() * 3000, 0),
        common::fixed(osc.failurePct(), 1)}});
  std::printf("Paper Section 6.2: oscillation raised 1065 s to ~4605 s for "
              "long sequential indeterminations.\n");
  return 0;
}
