#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

#include "common/error.hpp"

namespace fades::sim {

using common::ErrorKind;
using common::require;
using netlist::GateOp;
using netlist::arity;

Simulator::Simulator(const Netlist& netlist)
    : nl_(netlist),
      eventsCounter_(obs::Registry::global().counter("sim.events")),
      stepsCounter_(obs::Registry::global().counter("sim.steps")) {
  values_.assign(nl_.netCount(), 0);
  flopState_.assign(nl_.flopCount(), 0);
  forced_.assign(nl_.netCount(), 0);
  forcedValue_.assign(nl_.netCount(), 0);
  inWorkList_.assign(nl_.gateCount(), 0);

  ram_.resize(nl_.ramCount());
  for (std::size_t r = 0; r < nl_.ramCount(); ++r) {
    ram_[r].mem.assign(nl_.ram(RamId{static_cast<std::uint32_t>(r)}).depth(),
                       0);
  }

  // Build CSR fanout lists (net -> dependent gates).
  std::vector<std::uint32_t> counts(nl_.netCount(), 0);
  for (const auto& g : nl_.gates()) {
    for (unsigned k = 0; k < arity(g.op); ++k) ++counts[g.in[k].value];
  }
  fanoutOffsets_.assign(nl_.netCount() + 1, 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    fanoutOffsets_[i + 1] = fanoutOffsets_[i] + counts[i];
  }
  fanoutGates_.assign(fanoutOffsets_.back(), 0);
  std::vector<std::uint32_t> cursor(fanoutOffsets_.begin(),
                                    fanoutOffsets_.end() - 1);
  for (std::uint32_t gi = 0; gi < nl_.gateCount(); ++gi) {
    const auto& g = nl_.gates()[gi];
    for (unsigned k = 0; k < arity(g.op); ++k) {
      fanoutGates_[cursor[g.in[k].value]++] = gi;
    }
  }

  reset();
}

void Simulator::reset() {
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(forced_.begin(), forced_.end(), 0);
  std::fill(forcedValue_.begin(), forcedValue_.end(), 0);
  cycle_ = 0;

  for (std::size_t f = 0; f < nl_.flopCount(); ++f) {
    const auto& flop = nl_.flops()[f];
    flopState_[f] = flop.init ? 1 : 0;
    values_[flop.q.value] = flopState_[f];
  }
  for (std::size_t r = 0; r < nl_.ramCount(); ++r) {
    const auto& ram = nl_.ram(RamId{static_cast<std::uint32_t>(r)});
    for (std::size_t row = 0; row < ram.depth(); ++row) {
      ram_[r].mem[row] = ram.initWord(row);
    }
    ram_[r].outputLatch = 0;
    applyRamOutput(static_cast<std::uint32_t>(r));
  }

  // Schedule every gate once so constants and initial values propagate.
  workList_.clear();
  std::fill(inWorkList_.begin(), inWorkList_.end(), 0);
  for (std::uint32_t gi = 0; gi < nl_.gateCount(); ++gi) {
    workList_.push_back(gi);
    inWorkList_[gi] = 1;
  }
  settle();
}

void Simulator::setInput(const std::string& portName, std::uint64_t value) {
  const auto* port = nl_.findInput(portName);
  require(port != nullptr, ErrorKind::InvalidArgument,
          "no input port '" + portName + "'");
  for (std::size_t i = 0; i < port->nets.size(); ++i) {
    setNetValue(port->nets[i], (value >> i) & 1);
  }
}

std::uint64_t Simulator::portValue(const std::string& outputPortName) const {
  const auto* port = nl_.findOutput(outputPortName);
  require(port != nullptr, ErrorKind::InvalidArgument,
          "no output port '" + outputPortName + "'");
  return busValue(port->nets);
}

std::uint64_t Simulator::busValue(const std::vector<NetId>& bus) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    if (values_[bus[i].value]) v |= 1ULL << i;
  }
  return v;
}

void Simulator::setNetValue(NetId id, bool value) {
  if (forced_[id.value]) return;  // force wins until released
  if ((values_[id.value] != 0) == value) return;
  values_[id.value] = value ? 1 : 0;
  scheduleFanout(id.value);
}

void Simulator::scheduleFanout(std::uint32_t netIndex) {
  for (std::uint32_t k = fanoutOffsets_[netIndex];
       k < fanoutOffsets_[netIndex + 1]; ++k) {
    const std::uint32_t gi = fanoutGates_[k];
    if (!inWorkList_[gi]) {
      inWorkList_[gi] = 1;
      workList_.push_back(gi);
    }
  }
}

void Simulator::evaluateGate(std::uint32_t gateIndex) {
  const auto& g = nl_.gates()[gateIndex];
  const bool a = g.in[0].valid() && values_[g.in[0].value] != 0;
  const bool b = g.in[1].valid() && values_[g.in[1].value] != 0;
  const bool c = g.in[2].valid() && values_[g.in[2].value] != 0;
  ++events_;
  setNetValue(g.out, netlist::evalGate(g.op, a, b, c));
}

void Simulator::settle() {
  // The netlist is acyclic, so this terminates. Gates may be re-evaluated
  // when multiple inputs change in sequence; that re-evaluation is exactly
  // the event activity a real event-driven simulator performs.
  while (!workList_.empty()) {
    const std::uint32_t gi = workList_.back();
    workList_.pop_back();
    inWorkList_[gi] = 0;
    evaluateGate(gi);
  }
}

void Simulator::applyRamOutput(std::uint32_t ramIndex) {
  const auto& ram = nl_.ram(RamId{ramIndex});
  const std::uint64_t out = ram_[ramIndex].outputLatch;
  for (unsigned b = 0; b < ram.dataBits; ++b) {
    setNetValue(ram.dataOut[b], (out >> b) & 1);
  }
}

void Simulator::step() {
  settle();

  // Sample all sequential elements with pre-edge values, then update
  // simultaneously (two-phase, like nonblocking assignment semantics).
  std::vector<std::uint8_t> nextFlop(nl_.flopCount());
  for (std::size_t f = 0; f < nl_.flopCount(); ++f) {
    nextFlop[f] = values_[nl_.flops()[f].d.value];
  }
  struct RamNext {
    bool doWrite = false;
    std::size_t writeRow = 0;
    std::uint64_t writeValue = 0;
    std::uint64_t readValue = 0;
  };
  std::vector<RamNext> ramNext(nl_.ramCount());
  for (std::size_t r = 0; r < nl_.ramCount(); ++r) {
    const auto& ram = nl_.ram(RamId{static_cast<std::uint32_t>(r)});
    const std::uint64_t addr = busValue(ram.addr);
    ramNext[r].readValue = ram_[r].mem[addr];  // read-first semantics
    if (!ram.isRom() && values_[ram.writeEnable.value]) {
      ramNext[r].doWrite = true;
      ramNext[r].writeRow = addr;
      ramNext[r].writeValue = busValue(ram.dataIn);
    }
  }

  for (std::size_t f = 0; f < nl_.flopCount(); ++f) {
    if (flopState_[f] != nextFlop[f]) {
      flopState_[f] = nextFlop[f];
      ++events_;
    }
    setNetValue(nl_.flops()[f].q, nextFlop[f] != 0);
  }
  for (std::size_t r = 0; r < nl_.ramCount(); ++r) {
    if (ramNext[r].doWrite) {
      ram_[r].mem[ramNext[r].writeRow] = ramNext[r].writeValue;
      ++events_;
    }
    ram_[r].outputLatch = ramNext[r].readValue;
    applyRamOutput(static_cast<std::uint32_t>(r));
  }

  ++cycle_;
  settle();

  stepsCounter_.inc();
  eventsCounter_.add(events_ - eventsFlushed_);
  eventsFlushed_ = events_;
}

void Simulator::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) step();
}

void Simulator::force(NetId id, bool value) {
  forced_[id.value] = 1;
  forcedValue_[id.value] = value ? 1 : 0;
  if ((values_[id.value] != 0) != value) {
    values_[id.value] = value ? 1 : 0;
    scheduleFanout(id.value);
  }
  settle();
}

void Simulator::release(NetId id) {
  if (!forced_[id.value]) return;
  forced_[id.value] = 0;
  // Recompute the driver's value for this net.
  const auto d = nl_.driverOf(id);
  bool driven = values_[id.value] != 0;
  switch (d.kind) {
    case Netlist::DriverKind::Gate: {
      const auto& g = nl_.gates()[d.index];
      const bool a = g.in[0].valid() && values_[g.in[0].value] != 0;
      const bool b = g.in[1].valid() && values_[g.in[1].value] != 0;
      const bool c = g.in[2].valid() && values_[g.in[2].value] != 0;
      driven = netlist::evalGate(g.op, a, b, c);
      ++events_;
      break;
    }
    case Netlist::DriverKind::Flop:
      driven = flopState_[d.index] != 0;
      break;
    case Netlist::DriverKind::Ram: {
      const auto& ram = nl_.ram(RamId{d.index});
      for (unsigned b = 0; b < ram.dataBits; ++b) {
        if (ram.dataOut[b] == id) {
          driven = (ram_[d.index].outputLatch >> b) & 1;
          break;
        }
      }
      break;
    }
    case Netlist::DriverKind::Input:
      // Inputs keep whatever the testbench last set; the forced value may
      // have masked it, so leave the current value in place.
      break;
    case Netlist::DriverKind::None:
      break;
  }
  if ((values_[id.value] != 0) != driven) {
    values_[id.value] = driven ? 1 : 0;
    scheduleFanout(id.value);
  }
  settle();
}

void Simulator::depositFlop(FlopId id, bool value) {
  flopState_[id.value] = value ? 1 : 0;
  ++events_;
  setNetValue(nl_.flops()[id.value].q, value);
  settle();
}

void Simulator::depositRam(RamId id, std::size_t row, std::uint64_t value) {
  ram_[id.value].mem[row] = value;
  ++events_;
}

Snapshot Simulator::snapshot() const {
  Snapshot s;
  s.netValues = values_;
  s.flopState = flopState_;
  s.ramContents.reserve(ram_.size());
  s.ramOutputLatch.reserve(ram_.size());
  for (const auto& r : ram_) {
    s.ramContents.push_back(r.mem);
    s.ramOutputLatch.push_back(r.outputLatch);
  }
  s.forced = forced_;
  s.forcedValue = forcedValue_;
  s.cycle = cycle_;
  return s;
}

void Simulator::restore(const Snapshot& s) {
  require(s.netValues.size() == values_.size() &&
              s.flopState.size() == flopState_.size() &&
              s.ramContents.size() == ram_.size(),
          ErrorKind::InvalidArgument, "snapshot shape mismatch");
  values_ = s.netValues;
  flopState_ = s.flopState;
  for (std::size_t r = 0; r < ram_.size(); ++r) {
    ram_[r].mem = s.ramContents[r];
    ram_[r].outputLatch = s.ramOutputLatch[r];
  }
  forced_ = s.forced;
  forcedValue_ = s.forcedValue;
  cycle_ = s.cycle;
  workList_.clear();
  std::fill(inWorkList_.begin(), inWorkList_.end(), 0);
}

}  // namespace fades::sim
