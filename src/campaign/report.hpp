// Campaign report rendering - the output side of the paper's results
// analysis module (Section 5): turn one or more CampaignResults into
// human-readable markdown or machine-readable CSV for later analysis.
#pragma once

#include <string>
#include <vector>

#include "campaign/types.hpp"

namespace fades::campaign {

/// One labelled result row in a report.
struct ReportEntry {
  std::string label;
  CampaignResult result;
};

/// Markdown table: label, experiments, failure/latent/silent counts and
/// percentages, mean modeled seconds.
std::string toMarkdown(const std::string& title,
                       const std::vector<ReportEntry>& entries);

/// CSV with a header row; one line per entry. Fields are quoted only when
/// needed (labels with commas).
std::string toCsv(const std::vector<ReportEntry>& entries);

/// Per-experiment CSV (requires results collected with keepRecords).
std::string recordsToCsv(const CampaignResult& result);

/// CSV from pre-formatted cells - the CSV counterpart of
/// common::renderTable. Every field is quoted through obs::csvQuote, the
/// one CSV-quoting implementation in the tree.
std::string renderCsv(const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows);

/// GitHub-style markdown pipe table from pre-formatted cells.
std::string renderMarkdownTable(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows);

/// Write text to a file; throws on I/O failure.
void writeTextFile(const std::string& path, const std::string& text);

}  // namespace fades::campaign
