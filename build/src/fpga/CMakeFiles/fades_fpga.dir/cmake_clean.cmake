file(REMOVE_RECURSE
  "CMakeFiles/fades_fpga.dir/bitstream_io.cpp.o"
  "CMakeFiles/fades_fpga.dir/bitstream_io.cpp.o.d"
  "CMakeFiles/fades_fpga.dir/device.cpp.o"
  "CMakeFiles/fades_fpga.dir/device.cpp.o.d"
  "CMakeFiles/fades_fpga.dir/layout.cpp.o"
  "CMakeFiles/fades_fpga.dir/layout.cpp.o.d"
  "libfades_fpga.a"
  "libfades_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fades_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
