file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_bitflip.dir/bench_fig11_bitflip.cpp.o"
  "CMakeFiles/bench_fig11_bitflip.dir/bench_fig11_bitflip.cpp.o.d"
  "bench_fig11_bitflip"
  "bench_fig11_bitflip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_bitflip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
