#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "rtl/builder.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"

namespace fades::sim {
namespace {

using netlist::Netlist;
using netlist::NetId;
using netlist::Unit;
using rtl::Builder;
using rtl::Bus;
using rtl::Register;

// ------------------------------------------------------------- basics -----

TEST(Sim, CombinationalSettling) {
  Builder b;
  NetId a = b.inputBit("a");
  NetId x = b.lnot(a);
  NetId y = b.lnot(x);
  b.output("x", x);
  b.output("y", y);
  Netlist nl = b.finish();
  Simulator s(nl);
  s.setInput("a", 0);
  s.settle();
  EXPECT_EQ(s.portValue("x"), 1u);
  EXPECT_EQ(s.portValue("y"), 0u);
  s.setInput("a", 1);
  s.settle();
  EXPECT_EQ(s.portValue("x"), 0u);
  EXPECT_EQ(s.portValue("y"), 1u);
}

TEST(Sim, EventsAreCounted) {
  Builder b;
  NetId a = b.inputBit("a");
  b.output("x", b.lnot(a));
  Netlist nl = b.finish();
  Simulator s(nl);
  const auto before = s.eventsProcessed();
  s.setInput("a", 1);
  s.settle();
  EXPECT_GT(s.eventsProcessed(), before);
}

TEST(Sim, GlitchFreeFanoutReconvergence) {
  // y = a AND NOT a must settle to 0 regardless of evaluation order.
  Builder b;
  NetId a = b.inputBit("a");
  b.output("y", b.land(a, b.lnot(a)));
  Netlist nl = b.finish();
  Simulator s(nl);
  for (int v = 0; v < 4; ++v) {
    s.setInput("a", v & 1);
    s.settle();
    EXPECT_EQ(s.portValue("y"), 0u);
  }
}

// ---------------------------------------------------------- sequential -----

TEST(Sim, ShiftRegisterDelaysByOneCyclePerStage) {
  Builder b;
  NetId in = b.inputBit("in");
  Bus q1 = b.registered("s1", Bus{in});
  Bus q2 = b.registered("s2", q1);
  Bus q3 = b.registered("s3", q2);
  b.output("out", q3);
  Netlist nl = b.finish();
  Simulator s(nl);

  s.setInput("in", 1);
  EXPECT_EQ(s.portValue("out"), 0u);
  s.step();
  s.setInput("in", 0);
  s.step();
  s.step();
  EXPECT_EQ(s.portValue("out"), 1u);  // the pulse arrives after 3 edges
  s.step();
  EXPECT_EQ(s.portValue("out"), 0u);
}

TEST(Sim, ResetRestoresInitialState) {
  Builder b;
  Register c = b.makeRegister("c", 8, 5);
  b.connect(c, b.increment(c.q));
  b.output("c", c.q);
  Netlist nl = b.finish();
  Simulator s(nl);
  s.run(10);
  EXPECT_EQ(s.portValue("c"), 15u);
  EXPECT_EQ(s.cycle(), 10u);
  s.reset();
  EXPECT_EQ(s.portValue("c"), 5u);
  EXPECT_EQ(s.cycle(), 0u);
}

TEST(Sim, RamWriteThenRead) {
  Builder b;
  Bus addr = b.input("addr", 4);
  Bus din = b.input("din", 8);
  NetId we = b.inputBit("we");
  Bus dout = b.ram("mem", 4, 8, addr, din, we);
  b.output("dout", dout);
  Netlist nl = b.finish();
  Simulator s(nl);

  s.setInput("addr", 7);
  s.setInput("din", 0xAB);
  s.setInput("we", 1);
  s.step();  // write 0xAB to [7]; read-first returns old value (0)
  EXPECT_EQ(s.portValue("dout"), 0u);
  s.setInput("we", 0);
  s.step();  // now the read of [7] lands
  EXPECT_EQ(s.portValue("dout"), 0xABu);
}

TEST(Sim, RamReadFirstDuringWrite) {
  Builder b;
  Bus addr = b.input("addr", 2);
  Bus din = b.input("din", 8);
  NetId we = b.inputBit("we");
  b.output("dout", b.ram("mem", 2, 8, addr, din, we));
  Netlist nl = b.finish();
  Simulator s(nl);

  s.setInput("addr", 1);
  s.setInput("din", 0x11);
  s.setInput("we", 1);
  s.step();
  s.setInput("din", 0x22);
  s.step();  // writes 0x22 while reading: must observe OLD content 0x11
  EXPECT_EQ(s.portValue("dout"), 0x11u);
  s.setInput("we", 0);
  s.step();
  EXPECT_EQ(s.portValue("dout"), 0x22u);
}

// ---------------------------------------- simulator commands (VFIT ops) -----

TEST(Sim, ForceOverridesDriverUntilRelease) {
  Builder b;
  NetId a = b.inputBit("a");
  NetId x = b.lnot(a);
  b.output("x", x);
  b.output("y", b.lnot(x));
  Netlist nl = b.finish();
  Simulator s(nl);
  s.setInput("a", 0);
  s.settle();
  EXPECT_EQ(s.portValue("x"), 1u);

  s.force(x, false);
  EXPECT_EQ(s.portValue("x"), 0u);
  EXPECT_EQ(s.portValue("y"), 1u);  // downstream sees the forced value
  EXPECT_TRUE(s.isForced(x));

  // Driver changes do not leak through a forced net.
  s.setInput("a", 1);
  s.settle();
  EXPECT_EQ(s.portValue("x"), 0u);

  s.release(x);
  EXPECT_FALSE(s.isForced(x));
  EXPECT_EQ(s.portValue("x"), 0u);  // NOT a == !1 == 0: happens to match force
  s.setInput("a", 0);
  s.settle();
  EXPECT_EQ(s.portValue("x"), 1u);  // driver is back in control
}

TEST(Sim, ForcedFlopOutputRecoversStoredState) {
  Builder b;
  Register r = b.makeRegister("r", 1, 1);
  b.connect(r, r.q);  // hold 1 forever
  b.output("r", r.q);
  Netlist nl = b.finish();
  Simulator s(nl);
  EXPECT_EQ(s.portValue("r"), 1u);
  s.force(r.q[0], false);
  EXPECT_EQ(s.portValue("r"), 0u);
  s.step();  // forced value is what the feedback loop now captures
  s.release(r.q[0]);
  // The fault became permanent through the feedback path: stored state is 0.
  EXPECT_EQ(s.portValue("r"), 0u);
}

TEST(Sim, DepositFlopFlipsStateImmediately) {
  Builder b;
  Register c = b.makeRegister("c", 4, 0);
  b.connect(c, b.increment(c.q));
  b.output("c", c.q);
  Netlist nl = b.finish();
  Simulator s(nl);
  s.run(3);
  EXPECT_EQ(s.portValue("c"), 3u);
  // Flip bit 2 (value 4): 3 -> 7.
  const auto f = nl.findFlop("c[2]");
  ASSERT_TRUE(f.has_value());
  s.depositFlop(*f, true);
  EXPECT_EQ(s.portValue("c"), 7u);
  s.step();
  EXPECT_EQ(s.portValue("c"), 8u);  // counting continues from faulty state
}

TEST(Sim, DepositRamChangesStoredWord) {
  Builder b;
  Bus addr = b.input("addr", 3);
  Bus din = b.input("din", 8);
  NetId we = b.inputBit("we");
  b.output("dout", b.ram("mem", 3, 8, addr, din, we));
  Netlist nl = b.finish();
  Simulator s(nl);
  const netlist::RamId ram{0};
  s.depositRam(ram, 5, 0x5A);
  EXPECT_EQ(s.ramWord(ram, 5), 0x5Au);
  s.setInput("addr", 5);
  s.step();
  EXPECT_EQ(s.portValue("dout"), 0x5Au);
}

// ------------------------------------------------------------ snapshot -----

TEST(Sim, SnapshotRestoreReplaysIdentically) {
  Builder b;
  Register c = b.makeRegister("c", 8, 0);
  b.connect(c, b.increment(c.q));
  Bus addr = rtl::Bus(c.q.begin(), c.q.begin() + 3);
  Bus din = c.q;
  b.output("c", c.q);
  b.output("m", b.ram("m", 3, 8, addr, din, b.one()));
  Netlist nl = b.finish();
  Simulator s(nl);
  s.run(5);
  const Snapshot snap = s.snapshot();
  s.run(7);
  const auto after12 = s.portValue("c");
  const auto mem12 = s.portValue("m");

  s.restore(snap);
  EXPECT_EQ(s.cycle(), 5u);
  s.run(7);
  EXPECT_EQ(s.portValue("c"), after12);
  EXPECT_EQ(s.portValue("m"), mem12);
}

TEST(Sim, SnapshotPreservesForces) {
  Builder b;
  NetId a = b.inputBit("a");
  NetId x = b.lnot(a);
  b.output("x", x);
  Netlist nl = b.finish();
  Simulator s(nl);
  s.setInput("a", 0);
  s.force(x, false);
  const Snapshot snap = s.snapshot();
  s.release(x);
  s.restore(snap);
  EXPECT_TRUE(s.isForced(x));
  EXPECT_EQ(s.portValue("x"), 0u);
}

TEST(Sim, DeterministicAcrossInstances) {
  auto build = [] {
    Builder b;
    Register lfsr = b.makeRegister("lfsr", 8, 1);
    NetId fb = b.lxor(lfsr.q[7], b.lxor(lfsr.q[5], b.lxor(lfsr.q[4], lfsr.q[3])));
    Bus next = rtl::Bus{fb};
    for (int i = 0; i < 7; ++i) next.push_back(lfsr.q[i]);
    b.connect(lfsr, next);
    b.output("lfsr", lfsr.q);
    return b.finish();
  };
  Netlist n1 = build();
  Netlist n2 = build();
  Simulator s1(n1), s2(n2);
  for (int i = 0; i < 300; ++i) {
    s1.step();
    s2.step();
    ASSERT_EQ(s1.portValue("lfsr"), s2.portValue("lfsr")) << "cycle " << i;
  }
}

// ----------------------------------------------------------- VCD golden -----

TEST(Vcd, MatchesGoldenFileByteForByte) {
  // The reference trace under tests/data/ pins down the exact VCD text the
  // writer produces for a fixed circuit: header layout, identifier codes,
  // MSB-first bus emission, change-only timestamps. Any formatting drift
  // shows up as a diff against a committed, reviewable file. To regenerate
  // after an intentional change:
  //   FADES_REGEN_GOLDEN=1 ./tests/test_sim --gtest_filter='Vcd.Matches*'
  Builder b;
  b.setUnit(Unit::Registers);
  Register counter = b.makeRegister("cnt", 4, 0);
  b.connect(counter, b.increment(counter.q));
  Register lfsr = b.makeRegister("lfsr", 4, 0x9);
  Bus next{b.lxor(lfsr.q[3], lfsr.q[2])};
  for (int i = 0; i < 3; ++i) next.push_back(lfsr.q[i]);
  b.connect(lfsr, next);
  b.output("cnt", counter.q);
  b.output("lfsr", lfsr.q);
  b.output("mix", b.lxor(counter.q[0], lfsr.q[3]));
  Netlist nl = b.finish();

  Simulator s(nl);
  VcdWriter vcd(s, nl);
  vcd.addAllOutputs();
  for (std::uint64_t cycle = 0; cycle < 16; ++cycle) {
    vcd.sample(cycle);
    s.step();
  }

  const std::string goldenPath =
      std::string(FADES_TEST_DATA_DIR) + "/golden.vcd";
  if (std::getenv("FADES_REGEN_GOLDEN") != nullptr) {
    vcd.save(goldenPath);
    GTEST_SKIP() << "regenerated " << goldenPath;
  }
  std::ifstream in(goldenPath, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << goldenPath;
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(vcd.str(), golden.str());
}

}  // namespace
}  // namespace fades::sim
