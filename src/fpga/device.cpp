#include "fpga/device.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/error.hpp"

namespace fades::fpga {

using common::ErrorKind;
using common::raise;
using common::require;

Device::Device(const DeviceSpec& spec)
    : spec_(spec),
      layout_(spec),
      nodes_(spec),
      logicCfg_(layout_.logicPlaneBits()),
      bramCfg_(layout_.bramPlaneBits()) {
  ffState_.assign(spec_.cbCount(), 0);
  bramLatch_.assign(spec_.memBlocks, 0);
  padInput_.assign(spec_.padCount(), 0);
  parent_.assign(nodes_.count(), 0);
  compSource_.assign(nodes_.count(), 0);
}

// ---------------------------------------------------------------------------
// Configuration access
// ---------------------------------------------------------------------------

void Device::setLogicBit(std::size_t addr, bool v) {
  if (logicCfg_.get(addr) == v) return;
  logicCfg_.set(addr, v);
  const auto d = layout_.decode(addr);
  if (d.region == ConfigLayout::Decoded::Region::Cb && d.bitInRecord < 16) {
    lutDirty_ = true;
  } else if (d.region == ConfigLayout::Decoded::Region::Cb &&
             d.bitInRecord < 24) {
    // Used-flags change the compiled structure; mux fields do not.
    const auto f = static_cast<CbField>(d.bitInRecord);
    if (f == CbField::FfUsed || f == CbField::LutUsed) {
      topoDirty_ = true;
    } else {
      miscDirty_ = true;
      if (f == CbField::FfInSrc) timingDirty_ = true;
    }
  } else {
    topoDirty_ = true;  // connection boxes, PMs, pads, memory-block setup
  }
}

std::vector<std::uint8_t> Device::readLogicFrame(FrameAddr f) const {
  std::vector<std::uint8_t> bytes(spec_.frameBytes, 0);
  readLogicFrameInto(f, bytes);
  return bytes;
}

void Device::readLogicFrameInto(FrameAddr f,
                                std::span<std::uint8_t> out) const {
  require(out.size() >= spec_.frameBytes, ErrorKind::ConfigError,
          "short logic frame buffer");
  const std::size_t first = layout_.logicFrameFirstBit(f);
  const unsigned n = layout_.logicFrameBitCount(f);
  logicCfg_.exportBytesInto(first, n, out);
  std::fill(out.begin() + (n + 7) / 8, out.begin() + spec_.frameBytes, 0);
}

void Device::writeLogicFrame(FrameAddr f, std::span<const std::uint8_t> bytes) {
  require(bytes.size() >= (layout_.logicFrameBitCount(f) + 7u) / 8u,
          ErrorKind::ConfigError, "short logic frame payload");
  const std::size_t first = layout_.logicFrameFirstBit(f);
  const unsigned n = layout_.logicFrameBitCount(f);
  for (unsigned k = 0; k < n; ++k) {
    const bool v = (bytes[k >> 3] >> (k & 7)) & 1u;
    setLogicBit(first + k, v);  // per-bit so dirtiness is classified
  }
}

std::vector<std::uint8_t> Device::readBramFrame(unsigned block,
                                                unsigned minor) const {
  std::vector<std::uint8_t> bytes(spec_.frameBytes, 0);
  readBramFrameInto(block, minor, bytes);
  return bytes;
}

void Device::readBramFrameInto(unsigned block, unsigned minor,
                               std::span<std::uint8_t> out) const {
  require(block < spec_.memBlocks && minor < layout_.bramFramesPerBlock(),
          ErrorKind::ConfigError, "bad bram frame address");
  require(out.size() >= spec_.frameBytes, ErrorKind::ConfigError,
          "short bram frame buffer");
  const std::size_t first = std::size_t{block} * spec_.memBlockBits +
                            std::size_t{minor} * layout_.frameBits();
  const std::size_t n =
      std::min<std::size_t>(layout_.frameBits(),
                            std::size_t{spec_.memBlockBits} -
                                std::size_t{minor} * layout_.frameBits());
  bramCfg_.exportBytesInto(first, n, out);
  std::fill(out.begin() + (n + 7) / 8, out.begin() + spec_.frameBytes, 0);
}

void Device::writeBramFrame(unsigned block, unsigned minor,
                            std::span<const std::uint8_t> bytes) {
  require(block < spec_.memBlocks && minor < layout_.bramFramesPerBlock(),
          ErrorKind::ConfigError, "bad bram frame address");
  const std::size_t first = std::size_t{block} * spec_.memBlockBits +
                            std::size_t{minor} * layout_.frameBits();
  const std::size_t n =
      std::min<std::size_t>(layout_.frameBits(),
                            std::size_t{spec_.memBlockBits} -
                                std::size_t{minor} * layout_.frameBits());
  require(bytes.size() >= (n + 7) / 8, ErrorKind::ConfigError,
          "short bram frame payload");
  bramCfg_.importBytes(first, n, bytes);
}

std::vector<std::uint8_t> Device::readCaptureFrame(unsigned col) const {
  std::vector<std::uint8_t> bytes(spec_.frameBytes, 0);
  readCaptureFrameInto(col, bytes);
  return bytes;
}

void Device::readCaptureFrameInto(unsigned col,
                                  std::span<std::uint8_t> out) const {
  require(col < spec_.cols, ErrorKind::ConfigError,
          "bad capture frame column");
  require(out.size() >= spec_.frameBytes, ErrorKind::ConfigError,
          "short capture frame buffer");
  std::fill(out.begin(), out.begin() + spec_.frameBytes, 0);
  for (unsigned y = 0; y < spec_.rows; ++y) {
    if (ffState_[cbIndex(CbCoord{static_cast<std::uint16_t>(col),
                                 static_cast<std::uint16_t>(y)})]) {
      out[y >> 3] |= static_cast<std::uint8_t>(1u << (y & 7));
    }
  }
}

void Device::writeFullBitstream(const Bitstream& bs) {
  require(bs.logic.size() == logicCfg_.size() &&
              bs.bram.size() == bramCfg_.size(),
          ErrorKind::ConfigError, "bitstream size mismatch");
  logicCfg_ = bs.logic;
  bramCfg_ = bs.bram;
  topoDirty_ = true;
  ensureCompiled();
  // Configuration asserts GSR: every FF starts at its SrMode value, memory
  // output latches clear.
  for (const auto& ff : compiled_.ffs) ffState_[ff.cbIdx] = ff.srMode ? 1 : 0;
  std::fill(bramLatch_.begin(), bramLatch_.end(), 0);
  cycle_ = 0;
  settle();
}

Bitstream Device::readbackBitstream() const {
  return Bitstream{logicCfg_, bramCfg_};
}

void Device::pulseGsr() {
  // GSR touches flip-flops only: each assumes its PRMux/CLRMux-selected
  // value. Memory contents, output latches and the (host-side) cycle
  // counter are unaffected, which is exactly what the GSR-based bit-flip
  // mechanism relies on when pulsing the line in the middle of a run.
  ensureCompiled();
  for (const auto& ff : compiled_.ffs) ffState_[ff.cbIdx] = ff.srMode ? 1 : 0;
  settle();
}

BitMeaning Device::decodeLogicBit(std::size_t addr) const {
  const auto d = layout_.decode(addr);
  BitMeaning m{};
  using Region = ConfigLayout::Decoded::Region;
  const unsigned tracks = spec_.tracks;
  switch (d.region) {
    case Region::Cb: {
      if (d.bitInRecord < 16) {
        m.kind = BitMeaning::Kind::LutTable;
        return m;
      }
      if (d.bitInRecord < 24) {
        m.kind = BitMeaning::Kind::CbField;
        return m;
      }
      unsigned rel = d.bitInRecord - 24;
      const unsigned inRegion = 2 * kCbInPins * tracks;
      if (rel < inRegion) {
        m.kind = BitMeaning::Kind::CbInConn;
        const bool vertical = rel >= kCbInPins * tracks;
        if (vertical) rel -= kCbInPins * tracks;
        const auto pin = static_cast<CbInPin>(rel / tracks);
        const unsigned t = rel % tracks;
        m.nodeA = nodes_.cbIn(d.cb, pin);
        m.nodeB = vertical ? nodes_.vseg(d.cb.x, d.cb.y, t)
                           : nodes_.hseg(d.cb.x, d.cb.y, t);
        m.isTransistor = true;
        return m;
      }
      rel -= inRegion;
      m.kind = BitMeaning::Kind::CbOutConn;
      const bool vertical = rel >= kCbOutPins * tracks;
      if (vertical) rel -= kCbOutPins * tracks;
      const auto pin = static_cast<CbOutPin>(rel / tracks);
      const unsigned t = rel % tracks;
      m.nodeA = nodes_.cbOut(d.cb, pin);
      m.nodeB = vertical ? nodes_.vseg(d.cb.x, d.cb.y, t)
                         : nodes_.hseg(d.cb.x, d.cb.y, t);
      m.isTransistor = true;
      return m;
    }
    case Region::Pm: {
      m.kind = BitMeaning::Kind::PmSwitch;
      const unsigned t = d.bitInRecord / kPmSwitches;
      const auto sw = static_cast<PmSwitch>(d.bitInRecord % kPmSwitches);
      const unsigned x = d.pm.x, y = d.pm.y;
      const bool hasW = x >= 1, hasE = x < spec_.cols;
      const bool hasS = y >= 1, hasN = y < spec_.rows;
      auto W = [&] { return nodes_.hseg(x - 1, y, t); };
      auto E = [&] { return nodes_.hseg(x, y, t); };
      auto S = [&] { return nodes_.vseg(x, y - 1, t); };
      auto N = [&] { return nodes_.vseg(x, y, t); };
      switch (sw) {
        case PmSwitch::WE:
          if (hasW && hasE) { m.nodeA = W(); m.nodeB = E(); m.isTransistor = true; }
          break;
        case PmSwitch::NS:
          if (hasN && hasS) { m.nodeA = N(); m.nodeB = S(); m.isTransistor = true; }
          break;
        case PmSwitch::WN:
          if (hasW && hasN) { m.nodeA = W(); m.nodeB = N(); m.isTransistor = true; }
          break;
        case PmSwitch::WS:
          if (hasW && hasS) { m.nodeA = W(); m.nodeB = S(); m.isTransistor = true; }
          break;
        case PmSwitch::EN:
          if (hasE && hasN) { m.nodeA = E(); m.nodeB = N(); m.isTransistor = true; }
          break;
        case PmSwitch::ES:
          if (hasE && hasS) { m.nodeA = E(); m.nodeB = S(); m.isTransistor = true; }
          break;
      }
      return m;
    }
    case Region::Pad: {
      if (d.bitInRecord < 8) {
        m.kind = BitMeaning::Kind::PadField;
        return m;
      }
      m.kind = BitMeaning::Kind::PadConn;
      unsigned rel = d.bitInRecord - 8;
      const bool vertical = rel >= tracks;
      if (vertical) rel -= tracks;
      const unsigned row = layout_.padRow(d.pad);
      m.nodeA = nodes_.pad(d.pad);
      if (layout_.padIsWest(d.pad)) {
        m.nodeB = vertical ? nodes_.vseg(0, row, rel)
                           : nodes_.hseg(0, row, rel);
      } else {
        m.nodeB = vertical ? nodes_.vseg(spec_.cols, row, rel)
                           : nodes_.hseg(spec_.cols - 1, row, rel);
      }
      m.isTransistor = true;
      return m;
    }
    case Region::Bram: {
      if (d.bitInRecord < 8) {
        m.kind = BitMeaning::Kind::BramField;
        return m;
      }
      m.kind = BitMeaning::Kind::BramPinConn;
      unsigned rel = d.bitInRecord - 8;
      const unsigned pin = rel / (2 * tracks);
      rel %= 2 * tracks;
      const bool vertical = rel >= tracks;
      if (vertical) rel -= tracks;
      const unsigned xb = layout_.bramPinColumn(d.block, pin);
      m.nodeA = nodes_.bramPin(d.block, pin);
      m.nodeB = vertical ? nodes_.vseg(xb, spec_.rows - 1, rel)
                         : nodes_.hseg(xb, spec_.rows, rel);
      m.isTransistor = true;
      return m;
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// Connectivity + compilation
// ---------------------------------------------------------------------------

std::uint32_t Device::find(std::uint32_t node) const {
  std::uint32_t root = node;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[node] != root) {
    const std::uint32_t next = parent_[node];
    parent_[node] = root;
    node = next;
  }
  return root;
}

void Device::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a != b) parent_[a] = b;
}

std::uint32_t Device::sourceOfComponent(std::uint32_t pinNode) {
  return compSource_[find(pinNode)];
}

void Device::ensureCompiled() {
  if (topoDirty_) {
    rebuildTopology();
    topoDirty_ = miscDirty_ = lutDirty_ = false;
    timingDirty_ = true;
  } else {
    if (lutDirty_) {
      refreshLutTables();
      lutDirty_ = false;
    }
    if (miscDirty_) {
      refreshMisc();
      miscDirty_ = false;
    }
  }
  if (timingEnabled_ && timingDirty_) {
    computeTiming();
    timingDirty_ = false;
  }
}

void Device::rebuildTopology() {
  // 1. Electrical connectivity: union all nodes joined by ON transistors.
  for (std::uint32_t n = 0; n < nodes_.count(); ++n) parent_[n] = n;
  edges_.clear();
  logicCfg_.forEachSetBit([&](std::size_t bit) {
    const BitMeaning m = decodeLogicBit(bit);
    if (m.isTransistor) {
      unite(m.nodeA, m.nodeB);
      edges_.emplace_back(m.nodeA, m.nodeB);
    }
  });

  // 2. Enumerate used resources and assign value indices.
  Compiled c;
  c.lutOfCb.assign(spec_.cbCount(), 0);
  c.ffOfCb.assign(spec_.cbCount(), 0);
  c.padInVal.assign(spec_.padCount(), 0);
  std::uint32_t nextVal = 1;  // 0 = constant 0

  for (std::uint32_t cbIdx = 0; cbIdx < spec_.cbCount(); ++cbIdx) {
    const CbCoord cb = cbFromIndex(cbIdx);
    if (cbField(cb, CbField::LutUsed)) {
      LutEntry e;
      e.cbIdx = cbIdx;
      e.val = nextVal++;
      e.table = static_cast<std::uint16_t>(
          logicCfg_.getWord(layout_.cbLutBit(cb, 0), 16));
      c.lutOfCb[cbIdx] = static_cast<std::uint32_t>(c.luts.size()) + 1;
      c.luts.push_back(e);
    }
    if (cbField(cb, CbField::FfUsed)) {
      FfEntry e;
      e.cbIdx = cbIdx;
      e.val = nextVal++;
      c.ffOfCb[cbIdx] = static_cast<std::uint32_t>(c.ffs.size()) + 1;
      c.ffs.push_back(e);
    }
  }
  for (unsigned p = 0; p < spec_.padCount(); ++p) {
    const bool used = logicCfg_.get(layout_.padFieldBit(p, PadField::Used));
    const bool isOut =
        logicCfg_.get(layout_.padFieldBit(p, PadField::IsOutput));
    if (used && !isOut) c.padInVal[p] = nextVal++;
  }
  for (unsigned b = 0; b < spec_.memBlocks; ++b) {
    if (!logicCfg_.get(layout_.bramFieldBit(b, BramField::Used))) continue;
    BramEntry e;
    e.block = b;
    const unsigned widthSel = static_cast<unsigned>(
        logicCfg_.getWord(layout_.bramFieldBit(b, BramField::WidthSelLo), 3));
    require(widthSel <= 4, ErrorKind::ConfigError, "bad bram width select");
    e.width = 1u << widthSel;
    unsigned depth = spec_.memBlockBits / e.width;
    e.addrBits = 0;
    while ((1u << e.addrBits) < depth) ++e.addrBits;
    e.doutValBase = nextVal;
    nextVal += e.width;
    c.brams.push_back(e);
  }
  c.valueCount = nextVal;

  // 3. Map each driven component to its source value index.
  std::fill(compSource_.begin(), compSource_.end(), 0);
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> multi;
  auto addDriver = [&](std::uint32_t node, std::uint32_t val) {
    const std::uint32_t root = find(node);
    if (compSource_[root] == 0 && multi.find(root) == multi.end()) {
      compSource_[root] = val;
    } else {
      auto& list = multi[root];
      if (list.empty() && compSource_[root] != 0) {
        list.push_back(compSource_[root]);
      }
      list.push_back(val);
    }
  };
  for (const auto& e : c.luts) {
    addDriver(nodes_.cbOut(cbFromIndex(e.cbIdx), CbOutPin::Lut), e.val);
  }
  for (const auto& e : c.ffs) {
    addDriver(nodes_.cbOut(cbFromIndex(e.cbIdx), CbOutPin::Ff), e.val);
  }
  for (unsigned p = 0; p < spec_.padCount(); ++p) {
    if (c.padInVal[p] != 0) addDriver(nodes_.pad(p), c.padInVal[p]);
  }
  for (const auto& e : c.brams) {
    for (unsigned b = 0; b < e.width; ++b) {
      addDriver(
          nodes_.bramPin(e.block, DeviceSpec::kBramAddrPins +
                                      DeviceSpec::kBramDataPins + b),
          e.doutValBase + b);
    }
  }

  // Shorted nets: error or wired-AND/OR join pseudo-elements.
  for (auto& [root, drivers] : multi) {
    if (shortPolicy_ == ShortPolicy::Error) {
      raise(ErrorKind::ConfigError,
            "short circuit: " + std::to_string(drivers.size()) +
                " drivers on one routed net");
    }
    JoinEntry j;
    j.drivers = drivers;
    j.wiredOr = (shortPolicy_ == ShortPolicy::WiredOr);
    j.val = c.valueCount++;
    compSource_[root] = j.val;
    c.joins.push_back(std::move(j));
  }

  // 4. Resolve every sink pin to its source value index.
  auto srcOf = [&](std::uint32_t pinNode) {
    return compSource_[find(pinNode)];
  };
  for (auto& e : c.luts) {
    const CbCoord cb = cbFromIndex(e.cbIdx);
    for (unsigned k = 0; k < 4; ++k) {
      e.in[k] = srcOf(nodes_.cbIn(cb, static_cast<CbInPin>(k)));
    }
  }
  for (auto& e : c.ffs) {
    const CbCoord cb = cbFromIndex(e.cbIdx);
    e.bypSrc = srcOf(nodes_.cbIn(cb, CbInPin::Byp));
    if (c.lutOfCb[e.cbIdx] != 0) {
      e.hasLut = true;
      e.lutVal = c.luts[c.lutOfCb[e.cbIdx] - 1].val;
    }
  }
  for (unsigned p = 0; p < spec_.padCount(); ++p) {
    const bool used = logicCfg_.get(layout_.padFieldBit(p, PadField::Used));
    const bool isOut =
        logicCfg_.get(layout_.padFieldBit(p, PadField::IsOutput));
    if (used && isOut) {
      c.padOuts.push_back(PadOutEntry{p, srcOf(nodes_.pad(p))});
    }
  }
  for (auto& e : c.brams) {
    for (unsigned a = 0; a < e.addrBits; ++a) {
      e.addrSrc[a] = srcOf(nodes_.bramPin(e.block, a));
    }
    for (unsigned b = 0; b < e.width; ++b) {
      e.dinSrc[b] =
          srcOf(nodes_.bramPin(e.block, DeviceSpec::kBramAddrPins + b));
    }
    e.weSrc = srcOf(nodes_.bramPin(e.block, DeviceSpec::kBramPins - 1));
  }

  // 5. Topological order over LUTs and joins.
  const std::size_t stepCount = c.luts.size() + c.joins.size();
  std::vector<std::int32_t> producer(c.valueCount, -1);
  for (std::size_t i = 0; i < c.luts.size(); ++i) {
    producer[c.luts[i].val] = static_cast<std::int32_t>(i);
  }
  for (std::size_t j = 0; j < c.joins.size(); ++j) {
    producer[c.joins[j].val] =
        static_cast<std::int32_t>(c.luts.size() + j);
  }
  std::vector<std::uint32_t> indegree(stepCount, 0);
  std::vector<std::vector<std::uint32_t>> fanout(stepCount);
  auto addDep = [&](std::uint32_t consumerStep, std::uint32_t val) {
    const std::int32_t p = producer[val];
    if (p >= 0) {
      ++indegree[consumerStep];
      fanout[static_cast<std::size_t>(p)].push_back(consumerStep);
    }
  };
  for (std::size_t i = 0; i < c.luts.size(); ++i) {
    for (unsigned k = 0; k < 4; ++k) {
      addDep(static_cast<std::uint32_t>(i), c.luts[i].in[k]);
    }
  }
  for (std::size_t j = 0; j < c.joins.size(); ++j) {
    for (auto v : c.joins[j].drivers) {
      addDep(static_cast<std::uint32_t>(c.luts.size() + j), v);
    }
  }
  std::vector<std::uint32_t> ready;
  for (std::uint32_t s = 0; s < stepCount; ++s) {
    if (indegree[s] == 0) ready.push_back(s);
  }
  c.steps.clear();
  c.steps.reserve(stepCount);
  while (!ready.empty()) {
    const std::uint32_t s = ready.back();
    ready.pop_back();
    if (s < c.luts.size()) {
      c.steps.push_back(Step{Step::Kind::Lut, s});
    } else {
      c.steps.push_back(
          Step{Step::Kind::Join,
               static_cast<std::uint32_t>(s - c.luts.size())});
    }
    for (auto t : fanout[s]) {
      if (--indegree[t] == 0) ready.push_back(t);
    }
  }
  require(c.steps.size() == stepCount, ErrorKind::ConfigError,
          "combinational loop in configuration");

  compiled_ = std::move(c);
  refreshMisc();
  values_.assign(compiled_.valueCount, 0);
  prevD_.assign(compiled_.ffs.size(), 0);
}

void Device::refreshMisc() {
  for (auto& e : compiled_.ffs) {
    const CbCoord cb = cbFromIndex(e.cbIdx);
    e.fromByp = cbField(cb, CbField::FfInSrc);
    e.invByp = cbField(cb, CbField::InvByp);
    e.srMode = cbField(cb, CbField::SrMode);
    e.lsrForced = cbField(cb, CbField::InvLsr);
  }
}

void Device::refreshLutTables() {
  for (auto& e : compiled_.luts) {
    e.table = static_cast<std::uint16_t>(
        logicCfg_.getWord(layout_.cbLutBit(cbFromIndex(e.cbIdx), 0), 16));
  }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void Device::refreshLevel0() {
  values_[0] = 0;
  for (const auto& e : compiled_.ffs) {
    if (e.lsrForced) {
      // Asserted asynchronous set/reset drives the stored state itself, so
      // the value persists after the InvertLSRMux is configured back.
      ffState_[e.cbIdx] = e.srMode ? 1 : 0;
    }
    values_[e.val] = ffState_[e.cbIdx];
  }
  for (unsigned p = 0; p < spec_.padCount(); ++p) {
    if (compiled_.padInVal[p] != 0) {
      values_[compiled_.padInVal[p]] = padInput_[p];
    }
  }
  for (const auto& e : compiled_.brams) {
    for (unsigned b = 0; b < e.width; ++b) {
      values_[e.doutValBase + b] = (bramLatch_[e.block] >> b) & 1u;
    }
  }
}

void Device::runSteps() {
  for (const Step& s : compiled_.steps) {
    if (s.kind == Step::Kind::Lut) {
      const LutEntry& e = compiled_.luts[s.index];
      const unsigned idx = values_[e.in[0]] | (values_[e.in[1]] << 1) |
                           (values_[e.in[2]] << 2) | (values_[e.in[3]] << 3);
      values_[e.val] = (e.table >> idx) & 1u;
    } else {
      const JoinEntry& e = compiled_.joins[s.index];
      std::uint8_t v = e.wiredOr ? 0 : 1;
      for (auto d : e.drivers) {
        v = e.wiredOr ? (v | values_[d]) : (v & values_[d]);
      }
      values_[e.val] = v;
    }
  }
}

void Device::settle() {
  ensureCompiled();
  refreshLevel0();
  runSteps();
}

void Device::setPadInput(unsigned pad, bool v) {
  require(pad < spec_.padCount(), ErrorKind::InvalidArgument,
          "pad index out of range");
  padInput_[pad] = v ? 1 : 0;
}

bool Device::padValue(unsigned pad) const {
  for (const auto& e : compiled_.padOuts) {
    if (e.pad == pad) return values_[e.src] != 0;
  }
  if (pad < spec_.padCount() && compiled_.padInVal[pad] != 0) {
    return padInput_[pad] != 0;
  }
  return false;
}

void Device::step() {
  settle();

  // Sample all sequential elements with settled pre-edge values.
  const std::size_t nf = compiled_.ffs.size();
  std::vector<std::uint8_t> d(nf, 0);
  for (std::size_t i = 0; i < nf; ++i) {
    const FfEntry& e = compiled_.ffs[i];
    std::uint8_t v;
    if (e.fromByp) {
      v = values_[e.bypSrc] ^ (e.invByp ? 1 : 0);
    } else {
      v = e.hasLut ? values_[e.lutVal] : 0;
    }
    d[i] = v;
  }

  struct BramOp {
    std::uint32_t read = 0;
    bool write = false;
    std::size_t row = 0;
    std::uint32_t wval = 0;
  };
  std::vector<BramOp> ops(compiled_.brams.size());
  for (std::size_t i = 0; i < compiled_.brams.size(); ++i) {
    const BramEntry& e = compiled_.brams[i];
    std::size_t addr = 0;
    for (unsigned a = 0; a < e.addrBits; ++a) {
      addr |= static_cast<std::size_t>(values_[e.addrSrc[a]]) << a;
    }
    const std::size_t base = addr * e.width;
    std::uint32_t rd = 0;
    for (unsigned b = 0; b < e.width; ++b) {
      rd |= static_cast<std::uint32_t>(
                bramCfg_.get(layout_.bramContentBit(e.block, base + b)))
            << b;
    }
    ops[i].read = rd;
    if (values_[e.weSrc]) {
      ops[i].write = true;
      ops[i].row = addr;
      std::uint32_t wv = 0;
      for (unsigned b = 0; b < e.width; ++b) {
        wv |= static_cast<std::uint32_t>(values_[e.dinSrc[b]]) << b;
      }
      ops[i].wval = wv;
    }
  }

  // Commit the edge.
  for (std::size_t i = 0; i < nf; ++i) {
    const FfEntry& e = compiled_.ffs[i];
    std::uint8_t capture = d[i];
    if (timingEnabled_ && e.late) capture = prevD_[i];  // stale data captured
    if (e.lsrForced) capture = e.srMode ? 1 : 0;        // async SR dominates
    ffState_[e.cbIdx] = capture;
  }
  prevD_ = std::move(d);
  for (std::size_t i = 0; i < compiled_.brams.size(); ++i) {
    const BramEntry& e = compiled_.brams[i];
    bramLatch_[e.block] = ops[i].read;
    if (ops[i].write) {
      const std::size_t base = ops[i].row * e.width;
      for (unsigned b = 0; b < e.width; ++b) {
        bramCfg_.set(layout_.bramContentBit(e.block, base + b),
                     (ops[i].wval >> b) & 1u);
      }
    }
  }

  ++cycle_;
  refreshLevel0();
  runSteps();
}

std::uint64_t Device::bramWord(unsigned block, unsigned width,
                               std::size_t row) const {
  std::uint64_t v = 0;
  for (unsigned b = 0; b < width; ++b) {
    v |= static_cast<std::uint64_t>(
             bramCfg_.get(layout_.bramContentBit(block, row * width + b)))
         << b;
  }
  return v;
}

DeviceState Device::captureState() const {
  DeviceState s;
  s.ffState = ffState_;
  s.bramContent = bramCfg_;
  s.bramLatch = bramLatch_;
  s.padInput = padInput_;
  s.cycle = cycle_;
  return s;
}

void Device::restoreState(const DeviceState& s) {
  require(s.ffState.size() == ffState_.size() &&
              s.bramContent.size() == bramCfg_.size(),
          ErrorKind::InvalidArgument, "device state shape mismatch");
  ffState_ = s.ffState;
  bramCfg_ = s.bramContent;
  bramLatch_ = s.bramLatch;
  padInput_ = s.padInput;
  cycle_ = s.cycle;
  settle();
}

// ---------------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------------

void Device::setTimingEnabled(bool on) {
  if (on && !timingEnabled_) timingDirty_ = true;
  timingEnabled_ = on;
}

const TimingReport& Device::timingReport() {
  ensureCompiled();
  if (timingDirty_ && timingEnabled_) {
    computeTiming();
    timingDirty_ = false;
  }
  return timingReport_;
}

double Device::sinkDelayNs(std::uint32_t sinkNode) {
  ensureCompiled();
  if (timingDirty_) {
    computeTiming();
    timingDirty_ = false;
  }
  return sinkNode < sinkDelay_.size() ? sinkDelay_[sinkNode] : 0.0;
}

void Device::computeTiming() {
  // Per-component wire delays: BFS from the driver through the ON-transistor
  // graph. Path cost: one segmentDelay per wire segment entered plus one
  // passTransistor delay per transistor crossed. Every transistor hanging on
  // the net also contributes capacitive load (the mechanism behind the
  // paper's fan-out delay faults, Section 4.3 / Figure 8).
  sinkDelay_.assign(nodes_.count(), 0.0);

  // Adjacency over nodes that appear in edges.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> adj;
  std::unordered_map<std::uint32_t, unsigned> compEdgeCount;
  adj.reserve(edges_.size() * 2);
  for (const auto& [a, b] : edges_) {
    adj[a].push_back(b);
    adj[b].push_back(a);
    ++compEdgeCount[find(a)];
  }

  auto isSegment = [&](std::uint32_t n) {
    const auto k = nodes_.info(n).kind;
    return k == NodeKind::HSeg || k == NodeKind::VSeg;
  };

  // Driver nodes: every node whose component it sources.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> driverNodes;
  auto collect = [&](std::uint32_t node) {
    if (compSource_[find(node)] != 0 && adj.count(node)) {
      driverNodes.emplace_back(node, find(node));
    }
  };
  for (const auto& e : compiled_.luts) {
    collect(nodes_.cbOut(cbFromIndex(e.cbIdx), CbOutPin::Lut));
  }
  for (const auto& e : compiled_.ffs) {
    collect(nodes_.cbOut(cbFromIndex(e.cbIdx), CbOutPin::Ff));
  }
  for (unsigned p = 0; p < spec_.padCount(); ++p) {
    if (compiled_.padInVal[p] != 0) collect(nodes_.pad(p));
  }
  for (const auto& e : compiled_.brams) {
    for (unsigned b = 0; b < e.width; ++b) {
      collect(nodes_.bramPin(e.block, DeviceSpec::kBramAddrPins +
                                          DeviceSpec::kBramDataPins + b));
    }
  }

  std::unordered_map<std::uint32_t, double> dist;
  std::vector<std::uint32_t> queue;
  for (const auto& [driver, root] : driverNodes) {
    const double load =
        spec_.fanoutLoadNs * static_cast<double>(compEdgeCount[root]);
    dist.clear();
    queue.clear();
    dist[driver] = 0.0;
    queue.push_back(driver);
    for (std::size_t h = 0; h < queue.size(); ++h) {
      const std::uint32_t n = queue[h];
      const double dn = dist[n];
      auto it = adj.find(n);
      if (it == adj.end()) continue;
      for (std::uint32_t nb : it->second) {
        const double cost = dn + spec_.passTransistorNs +
                            (isSegment(nb) ? spec_.segmentDelayNs : 0.0);
        auto [dit, inserted] = dist.try_emplace(nb, cost);
        if (inserted) {
          queue.push_back(nb);
        } else if (cost < dit->second) {
          // Near-uniform edge costs: BFS plus relaxation converges quickly.
          dit->second = cost;
          queue.push_back(nb);
        }
      }
    }
    for (const auto& [node, dcost] : dist) {
      if (!isSegment(node) && node != driver) {
        sinkDelay_[node] = dcost + load;
      }
    }
  }

  // Arrival-time propagation in topological order.
  std::vector<double> arr(compiled_.valueCount, 0.0);
  for (const auto& e : compiled_.ffs) arr[e.val] = spec_.clkToQNs;
  for (unsigned p = 0; p < spec_.padCount(); ++p) {
    if (compiled_.padInVal[p] != 0) {
      arr[compiled_.padInVal[p]] = spec_.padDelayNs;
    }
  }
  for (const auto& e : compiled_.brams) {
    for (unsigned b = 0; b < e.width; ++b) {
      arr[e.doutValBase + b] = spec_.clkToQNs;
    }
  }
  for (const Step& s : compiled_.steps) {
    if (s.kind == Step::Kind::Lut) {
      const LutEntry& e = compiled_.luts[s.index];
      const CbCoord cb = cbFromIndex(e.cbIdx);
      double t = 0.0;
      for (unsigned k = 0; k < 4; ++k) {
        if (e.in[k] == 0) continue;
        const double wire =
            sinkDelay_[nodes_.cbIn(cb, static_cast<CbInPin>(k))];
        t = std::max(t, arr[e.in[k]] + wire);
      }
      arr[e.val] = t + spec_.lutDelayNs;
    } else {
      const JoinEntry& e = compiled_.joins[s.index];
      double t = 0.0;
      for (auto dval : e.drivers) t = std::max(t, arr[dval]);
      arr[e.val] = t;
    }
  }

  timingReport_ = TimingReport{};
  const double budget = spec_.clockPeriodNs - spec_.ffSetupNs;
  for (auto& e : compiled_.ffs) {
    const CbCoord cb = cbFromIndex(e.cbIdx);
    double arrival;
    if (e.fromByp) {
      arrival = (e.bypSrc != 0 ? arr[e.bypSrc] : 0.0) +
                sinkDelay_[nodes_.cbIn(cb, CbInPin::Byp)];
    } else {
      arrival = e.hasLut ? arr[e.lutVal] : 0.0;
    }
    e.late = arrival > budget;
    timingReport_.maxArrivalNs = std::max(timingReport_.maxArrivalNs, arrival);
    if (e.late) {
      ++timingReport_.lateFfCount;
      timingReport_.lateFfs.push_back(cb);
    }
  }
}

unsigned Device::usedLutCount() {
  ensureCompiled();
  return static_cast<unsigned>(compiled_.luts.size());
}

unsigned Device::usedFfCount() {
  ensureCompiled();
  return static_cast<unsigned>(compiled_.ffs.size());
}

}  // namespace fades::fpga
