file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ctr_rtr.dir/bench_ablation_ctr_rtr.cpp.o"
  "CMakeFiles/bench_ablation_ctr_rtr.dir/bench_ablation_ctr_rtr.cpp.o.d"
  "bench_ablation_ctr_rtr"
  "bench_ablation_ctr_rtr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ctr_rtr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
