// Robustness suite: unreliable-link emulation, retry/quarantine semantics
// and the crash-safe checkpoint journal. The invariant under test
// throughout: fault tolerance machinery may change wall-clock and telemetry,
// but never the campaign result - outcomes, records, modeled cost and the
// written artifact stay bit-identical to a fault-free uninterrupted run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "campaign/artifact.hpp"
#include "campaign/journal.hpp"
#include "campaign/parallel.hpp"
#include "campaign/report.hpp"
#include "campaign/types.hpp"
#include "common/error.hpp"
#include "core/fades.hpp"
#include "fpga/device.hpp"
#include "obs/artifact.hpp"
#include "obs/metrics.hpp"
#include "rtl/builder.hpp"
#include "synth/implement.hpp"

namespace fades {
namespace {

using campaign::CampaignJournal;
using campaign::CampaignResult;
using campaign::CampaignSpec;
using campaign::DurationBand;
using campaign::EngineFactory;
using campaign::ExperimentOutcome;
using campaign::FaultModel;
using campaign::FsyncPolicy;
using campaign::Outcome;
using campaign::ParallelCampaignRunner;
using campaign::ParallelOptions;
using campaign::TargetClass;
using common::ErrorKind;
using common::FadesError;
using core::FadesOptions;
using core::FadesTool;
using netlist::Unit;

// ------------------------------------------------------- tiny test rig -----

// Same mini multi-unit design as the parallel tests: an 8-bit LFSR, a 4-bit
// counter, their sum on "out", and a small write-only RAM log.
struct MiniDesign {
  netlist::Netlist nl;
  synth::Implementation impl;
  std::uint64_t cycles = 64;

  static netlist::Netlist build() {
    rtl::Builder b;
    b.setUnit(Unit::Registers);
    rtl::Register lfsr = b.makeRegister("lfsr", 8, 1);
    b.setUnit(Unit::Fsm);
    rtl::Register cnt = b.makeRegister("cnt", 4, 0);
    b.setUnit(Unit::Registers);
    auto fb = b.lxor(lfsr.q[7],
                     b.lxor(lfsr.q[5], b.lxor(lfsr.q[4], lfsr.q[3])));
    rtl::Bus next{fb};
    for (int i = 0; i < 7; ++i) next.push_back(lfsr.q[i]);
    b.connect(lfsr, next);
    b.setUnit(Unit::Fsm);
    b.connect(cnt, b.increment(cnt.q));
    b.setUnit(Unit::Alu);
    auto sum = b.add(lfsr.q, b.zeroExtend(cnt.q, 8), {});
    b.setUnit(Unit::Ram);
    b.ram("log", 4, 8, cnt.q, lfsr.q, b.one());
    b.output("out", sum.sum);
    return b.finish();
  }

  MiniDesign()
      : nl(build()), impl(synth::implement(nl, fpga::DeviceSpec::small())) {}

  static const MiniDesign& instance() {
    static MiniDesign d;
    return d;
  }
};

FadesOptions miniOptions() {
  FadesOptions o;
  o.observedOutputs = {"out"};
  o.keepRecords = true;
  o.progressInterval = 0;
  return o;
}

EngineFactory miniFactory(FadesOptions opt = miniOptions()) {
  const auto& d = MiniDesign::instance();
  return core::fadesEngineFactory(d.impl, d.cycles, std::move(opt));
}

CampaignSpec miniSpec(FaultModel model, TargetClass targets,
                      unsigned experiments = 24) {
  CampaignSpec spec;
  spec.model = model;
  spec.targets = targets;
  spec.unit = static_cast<int>(Unit::None);
  spec.band = DurationBand::shortBand();
  spec.experiments = experiments;
  spec.seed = 77;
  return spec;
}

/// Field-for-field, bit-for-bit comparison of two campaign results,
/// quarantine set included.
void expectSameResult(const CampaignResult& a, const CampaignResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.latents, b.latents);
  EXPECT_EQ(a.silents, b.silents);
  EXPECT_EQ(a.modeledSeconds.count(), b.modeledSeconds.count());
  EXPECT_EQ(a.modeledSeconds.sum(), b.modeledSeconds.sum());
  EXPECT_EQ(a.modeledSeconds.stddev(), b.modeledSeconds.stddev());
  EXPECT_EQ(a.cost.configSeconds, b.cost.configSeconds);
  EXPECT_EQ(a.cost.workloadSeconds, b.cost.workloadSeconds);
  EXPECT_EQ(a.cost.hostSeconds, b.cost.hostSeconds);
  EXPECT_EQ(a.cost.bytesToDevice, b.cost.bytesToDevice);
  EXPECT_EQ(a.cost.bytesFromDevice, b.cost.bytesFromDevice);
  EXPECT_EQ(a.cost.sessions, b.cost.sessions);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a.records[i].targetName, b.records[i].targetName);
    EXPECT_EQ(a.records[i].injectCycle, b.records[i].injectCycle);
    EXPECT_EQ(a.records[i].durationCycles, b.records[i].durationCycles);
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
    EXPECT_EQ(a.records[i].modeledSeconds, b.records[i].modeledSeconds);
  }
  ASSERT_EQ(a.quarantined.size(), b.quarantined.size());
  for (std::size_t i = 0; i < a.quarantined.size(); ++i) {
    SCOPED_TRACE("quarantined " + std::to_string(i));
    EXPECT_EQ(a.quarantined[i].index, b.quarantined[i].index);
    EXPECT_EQ(a.quarantined[i].kind, b.quarantined[i].kind);
    EXPECT_EQ(a.quarantined[i].error, b.quarantined[i].error);
    EXPECT_EQ(a.quarantined[i].attempts, b.quarantined[i].attempts);
  }
}

/// Scratch file removed (with its .tmp sibling) when the test ends.
struct TempPath {
  std::string str;
  explicit TempPath(std::string name) : str(std::move(name)) {
    std::remove(str.c_str());
  }
  ~TempPath() {
    std::remove(str.c_str());
    std::remove((str + ".tmp").c_str());
  }
};

std::string readWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) != 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

void writeWholeFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f), content.size());
  std::fclose(f);
}

/// Cut a journal down to its first `lines` newline-terminated lines, then
/// append a torn fragment - the on-disk picture left by a SIGKILL that
/// landed mid-append.
void simulateKill(const std::string& path, std::size_t lines) {
  const std::string content = readWholeFile(path);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < lines; ++i) {
    pos = content.find('\n', pos);
    ASSERT_NE(pos, std::string::npos) << "journal shorter than expected";
    ++pos;
  }
  writeWholeFile(path, content.substr(0, pos) + "{\"index\": 999, \"atte");
}

std::uint64_t counterValue(const char* name) {
  return obs::Registry::global().counter(name).value();
}

// ------------------------------------------------ journal serialization -----

ExperimentOutcome sampleOutcome() {
  ExperimentOutcome o;
  o.index = 41;
  o.outcome = Outcome::Latent;
  o.modeledSeconds = 1.0 / 3.0;       // no finite decimal representation:
  o.configSeconds = 2.0 / 7.0;        // round-trip must be bit-exact anyway
  o.workloadSeconds = 0.1 + 0.2;
  o.hostSeconds = 5e-5;
  o.bytesToDevice = 123456789012345ULL;
  o.bytesFromDevice = 42;
  o.sessions = 3;
  o.attempts = 2;
  o.hasRecord = true;
  o.record = {"lut_3_4", 17, 6.25, Outcome::Latent, 1.0 / 3.0};
  return o;
}

void expectSameOutcome(const ExperimentOutcome& a, const ExperimentOutcome& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.attempts, b.attempts);
  if (a.quarantined) {
    EXPECT_EQ(a.failureKind, b.failureKind);
    EXPECT_EQ(a.failureMessage, b.failureMessage);
    return;
  }
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.modeledSeconds, b.modeledSeconds);
  EXPECT_EQ(a.configSeconds, b.configSeconds);
  EXPECT_EQ(a.workloadSeconds, b.workloadSeconds);
  EXPECT_EQ(a.hostSeconds, b.hostSeconds);
  EXPECT_EQ(a.bytesToDevice, b.bytesToDevice);
  EXPECT_EQ(a.bytesFromDevice, b.bytesFromDevice);
  EXPECT_EQ(a.sessions, b.sessions);
  ASSERT_EQ(a.hasRecord, b.hasRecord);
  if (a.hasRecord) {
    EXPECT_EQ(a.record.targetName, b.record.targetName);
    EXPECT_EQ(a.record.injectCycle, b.record.injectCycle);
    EXPECT_EQ(a.record.durationCycles, b.record.durationCycles);
    EXPECT_EQ(a.record.outcome, b.record.outcome);
    EXPECT_EQ(a.record.modeledSeconds, b.record.modeledSeconds);
  }
}

TEST(JournalLine, NormalOutcomeRoundTripsBitExactly) {
  const ExperimentOutcome original = sampleOutcome();
  const std::string line = CampaignJournal::outcomeLine(original);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  ExperimentOutcome parsed;
  ASSERT_TRUE(CampaignJournal::parseOutcomeLine(
      line.substr(0, line.size() - 1), parsed));
  expectSameOutcome(original, parsed);
}

TEST(JournalLine, RecordlessOutcomeRoundTrips) {
  ExperimentOutcome original = sampleOutcome();
  original.hasRecord = false;
  original.record = {};
  ExperimentOutcome parsed;
  const std::string line = CampaignJournal::outcomeLine(original);
  ASSERT_TRUE(CampaignJournal::parseOutcomeLine(
      line.substr(0, line.size() - 1), parsed));
  expectSameOutcome(original, parsed);
}

TEST(JournalLine, QuarantinedOutcomeRoundTrips) {
  ExperimentOutcome original;
  original.index = 7;
  original.quarantined = true;
  original.failureKind = ErrorKind::LinkError;
  original.failureMessage = "readback CRC mismatch persisted through 8 retries";
  original.attempts = 3;
  ExperimentOutcome parsed;
  const std::string line = CampaignJournal::outcomeLine(original);
  ASSERT_TRUE(CampaignJournal::parseOutcomeLine(
      line.substr(0, line.size() - 1), parsed));
  expectSameOutcome(original, parsed);
}

TEST(JournalLine, RejectsMalformedLines) {
  ExperimentOutcome out;
  for (const char* bad : {
           "",                                   // empty
           "not json at all",                    // not JSON
           "[3]",                                // wrong top-level type
           "{}",                                 // missing keys
           "{\"index\": 3}",                     // missing attempts
           "{\"index\": 1, \"attempts\": 1, \"outcome\": \"purple\","
           " \"modeled_seconds\": 0, \"config_seconds\": 0,"
           " \"workload_seconds\": 0, \"host_seconds\": 0,"
           " \"bytes_to_device\": 0, \"bytes_from_device\": 0,"
           " \"sessions\": 0}",                  // unknown outcome name
           "{\"index\": 2, \"attempts\": 1, \"quarantined\": true,"
           " \"kind\": \"noSuchKind\", \"error\": \"x\"}",  // unknown kind
           "{\"schema\": \"fades.journal/1\"}",  // a header, not an outcome
       }) {
    EXPECT_FALSE(CampaignJournal::parseOutcomeLine(bad, out)) << bad;
  }
}

// ------------------------------------------------------ journal file ops -----

TEST(Journal, ResumeReplaysCommittedOutcomes) {
  TempPath path("robustness_journal_replay.jsonl");
  const auto spec = miniSpec(FaultModel::BitFlip, TargetClass::SequentialFF);
  ExperimentOutcome a = sampleOutcome();
  a.index = 4;
  ExperimentOutcome b = sampleOutcome();
  b.index = 9;
  b.outcome = Outcome::Failure;
  {
    CampaignJournal journal(path.str, FsyncPolicy::EachRecord);
    journal.open(spec, /*resume=*/false);
    journal.append(a);
    journal.append(b);
  }
  CampaignJournal resumed(path.str);
  resumed.open(spec, /*resume=*/true);
  ASSERT_EQ(resumed.completed().size(), 2u);
  ASSERT_TRUE(resumed.has(4));
  ASSERT_TRUE(resumed.has(9));
  EXPECT_FALSE(resumed.has(5));
  expectSameOutcome(a, resumed.completed().at(4));
  expectSameOutcome(b, resumed.completed().at(9));
}

TEST(Journal, ResumeTruncatesTornTailAndKeepsAppending) {
  TempPath path("robustness_journal_torn.jsonl");
  const auto spec = miniSpec(FaultModel::Pulse, TargetClass::CombinationalLut);
  ExperimentOutcome a = sampleOutcome();
  a.index = 1;
  {
    CampaignJournal journal(path.str);
    journal.open(spec, /*resume=*/false);
    journal.append(a);
  }
  // A killed writer leaves half a line; resume must ignore it...
  simulateKill(path.str, 2);  // keep header + outcome, then the torn tail
  ExperimentOutcome b = sampleOutcome();
  b.index = 2;
  {
    CampaignJournal journal(path.str);
    journal.open(spec, /*resume=*/true);
    EXPECT_EQ(journal.completed().size(), 1u);
    EXPECT_TRUE(journal.has(1));
    journal.append(b);  // ...and the next append must not merge into it.
  }
  CampaignJournal verify(path.str);
  verify.open(spec, /*resume=*/true);
  EXPECT_EQ(verify.completed().size(), 2u);
  EXPECT_TRUE(verify.has(1));
  EXPECT_TRUE(verify.has(2));
}

TEST(Journal, ResumeRejectsJournalOfDifferentSpec) {
  TempPath path("robustness_journal_spec.jsonl");
  const auto spec = miniSpec(FaultModel::BitFlip, TargetClass::SequentialFF);
  {
    CampaignJournal journal(path.str);
    journal.open(spec, /*resume=*/false);
  }
  CampaignSpec other = spec;
  other.seed += 1;  // resuming someone else's campaign would fabricate results
  CampaignJournal journal(path.str);
  try {
    journal.open(other, /*resume=*/true);
    FAIL() << "spec mismatch not detected";
  } catch (const FadesError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::ConfigError);
  }
}

TEST(Journal, OpenWithoutResumeRecreatesTheFile) {
  TempPath path("robustness_journal_fresh.jsonl");
  const auto spec = miniSpec(FaultModel::BitFlip, TargetClass::SequentialFF);
  {
    CampaignJournal journal(path.str);
    journal.open(spec, /*resume=*/false);
    journal.append(sampleOutcome());
  }
  CampaignJournal journal(path.str);
  journal.open(spec, /*resume=*/false);
  EXPECT_TRUE(journal.completed().empty());
  journal.close();
  // Only the header line survives the recreation.
  const std::string content = readWholeFile(path.str);
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 1);
}

// ----------------------------------------------- kill-and-resume runs -----

TEST(KillResume, ResumedCampaignMatchesUninterruptedRun) {
  const auto spec = miniSpec(FaultModel::BitFlip, TargetClass::SequentialFF);
  ParallelOptions refOpt;
  refOpt.jobs = 2;
  ParallelCampaignRunner reference(miniFactory(), refOpt);
  const CampaignResult uninterrupted = reference.run(spec);
  const std::string referenceArtifact =
      campaign::toRunArtifact(uninterrupted, "resume_test",
                              /*includeMetrics=*/false)
          .toJson()
          .dump(2);

  for (unsigned jobs : {1u, 8u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    TempPath path("robustness_resume_" + std::to_string(jobs) + ".jsonl");
    {
      // First run journals every outcome...
      CampaignJournal journal(path.str);
      ParallelOptions popt;
      popt.jobs = jobs;
      popt.journal = &journal;
      ParallelCampaignRunner runner(miniFactory(), popt);
      runner.run(spec);
    }
    // ...then the process "dies", taking a torn trailing line with it and
    // leaving only the header plus 9 committed outcomes.
    simulateKill(path.str, 1 + 9);

    const std::uint64_t resumedBefore =
        counterValue("campaign.resumed_experiments");
    CampaignJournal journal(path.str);
    ParallelOptions popt;
    popt.jobs = jobs;
    popt.journal = &journal;
    popt.resume = true;
    ParallelCampaignRunner runner(miniFactory(), popt);
    const CampaignResult resumed = runner.run(spec);

    expectSameResult(uninterrupted, resumed, "resumed result");
    EXPECT_EQ(campaign::toRunArtifact(resumed, "resume_test",
                                      /*includeMetrics=*/false)
                  .toJson()
                  .dump(2),
              referenceArtifact);
    EXPECT_EQ(counterValue("campaign.resumed_experiments") - resumedBefore, 9u);

    // The journal now covers the whole campaign: one more resume runs
    // nothing new and still reproduces the same result.
    CampaignJournal fullJournal(path.str);
    ParallelOptions fullOpt = popt;
    fullOpt.journal = &fullJournal;
    ParallelCampaignRunner again(miniFactory(), fullOpt);
    const CampaignResult replayed = again.run(spec);
    expectSameResult(uninterrupted, replayed, "fully journaled replay");
  }
}

// ------------------------------------------- link faults, real engine -----

TEST(LinkFaults, RetriedTransfersKeepResultsBitIdentical) {
  const auto& d = MiniDesign::instance();
  const auto spec =
      miniSpec(FaultModel::Pulse, TargetClass::CombinationalLut, 16);

  fpga::Device cleanDevice(d.impl.spec);
  FadesTool cleanTool(cleanDevice, d.impl, d.cycles, miniOptions());
  const CampaignResult baseline = cleanTool.runCampaign(spec);
  ASSERT_EQ(baseline.total(), spec.experiments);

  FadesOptions opt = miniOptions();
  opt.linkFaults.readCrcRate = 0.04;
  opt.linkFaults.writeFailRate = 0.04;
  opt.linkFaults.timeoutRate = 0.004;
  const std::uint64_t faultsBefore = counterValue("config.link_faults_injected");
  const std::uint64_t retriesBefore = counterValue("config.retries");
  fpga::Device faultyDevice(d.impl.spec);
  FadesTool faultyTool(faultyDevice, d.impl, d.cycles, opt);
  const CampaignResult faulty = faultyTool.runCampaign(spec);

  // Faults really fired and were retried away - visible in telemetry only.
  EXPECT_GT(counterValue("config.link_faults_injected"), faultsBefore);
  EXPECT_GT(counterValue("config.retries"), retriesBefore);
  EXPECT_TRUE(faulty.quarantined.empty());
  expectSameResult(baseline, faulty, "serial, link faults vs clean");

  // And the sharded runner under the same faulty link agrees too.
  ParallelOptions popt;
  popt.jobs = 4;
  ParallelCampaignRunner runner(miniFactory(opt), popt);
  expectSameResult(baseline, runner.run(spec), "sharded, link faults");
}

TEST(LinkFaults, QuarantineIsDeterministicAcrossJobCounts) {
  // A hostile link (every transfer faults with ~10% probability) with no
  // transfer-level retries: experiments quarantine after their rerun budget,
  // the campaign still completes, and - because the fault stream is seeded
  // per (experiment, rerun) - the quarantined set is a pure function of the
  // spec, identical for any shard count.
  FadesOptions opt = miniOptions();
  opt.linkFaults.readCrcRate = 0.05;
  opt.linkFaults.writeFailRate = 0.05;
  opt.linkFaults.timeoutRate = 0.005;
  opt.linkRetry.maxRetries = 0;
  opt.experimentAttempts = 2;
  const auto spec = miniSpec(FaultModel::BitFlip, TargetClass::SequentialFF);

  const std::uint64_t quarantinedBefore = counterValue("campaign.quarantined");
  std::vector<CampaignResult> results;
  for (unsigned jobs : {1u, 8u}) {
    ParallelOptions popt;
    popt.jobs = jobs;
    popt.experimentAttempts = opt.experimentAttempts;
    ParallelCampaignRunner runner(miniFactory(opt), popt);
    results.push_back(runner.run(spec));
  }
  const CampaignResult& one = results[0];
  const CampaignResult& eight = results[1];

  // The campaign survived: every experiment either completed or quarantined.
  ASSERT_FALSE(one.quarantined.empty());
  EXPECT_EQ(one.total() + one.quarantined.size(), spec.experiments);
  EXPECT_GT(counterValue("campaign.quarantined"), quarantinedBefore);
  for (const auto& q : one.quarantined) {
    EXPECT_EQ(q.kind, ErrorKind::LinkError);
    EXPECT_EQ(q.attempts, opt.experimentAttempts);
    EXPECT_FALSE(q.error.empty());
  }
  expectSameResult(one, eight, "quarantine jobs=1 vs jobs=8");
}

// --------------------------------------- retry semantics, synthetic -----

/// Index-pure engine whose designated indices raise a transient LinkError on
/// their first run and succeed on the rerun - no device behind it, so these
/// tests pin the runner's retry/quarantine logic in isolation.
class FlakyEngine final : public campaign::CampaignEngine {
 public:
  FlakyEngine(std::vector<unsigned> flaky, unsigned failForever = ~0u,
              ErrorKind kind = ErrorKind::LinkError)
      : flaky_(std::move(flaky)), failForever_(failForever), kind_(kind) {}

  std::vector<std::uint32_t> enumeratePool(const CampaignSpec&) override {
    return {0, 1, 2, 3};
  }

  ExperimentOutcome runExperimentAt(const CampaignSpec&,
                                    std::span<const std::uint32_t>,
                                    unsigned index, unsigned rerun) override {
    const bool flaky =
        std::find(flaky_.begin(), flaky_.end(), index) != flaky_.end();
    if (index == failForever_ || (flaky && rerun == 0)) {
      common::raise(kind_, "engine fault at " + std::to_string(index));
    }
    ExperimentOutcome out;
    out.index = index;
    out.outcome = index % 2 == 0 ? Outcome::Silent : Outcome::Latent;
    out.modeledSeconds = 0.5 + 0.01 * index;
    out.sessions = 1;
    return out;
  }

  void recover() override { ++recoveries_; }
  unsigned recoveries() const { return recoveries_; }

 private:
  std::vector<unsigned> flaky_;
  unsigned failForever_;
  ErrorKind kind_;
  unsigned recoveries_ = 0;
};

TEST(RetryPolicy, TransientErrorsAreRetriedAfterRecovery) {
  CampaignSpec spec;
  spec.experiments = 12;
  ParallelOptions popt;
  popt.jobs = 1;
  FlakyEngine* engine = nullptr;
  ParallelCampaignRunner runner(
      [&]() -> std::unique_ptr<campaign::CampaignEngine> {
        auto e = std::make_unique<FlakyEngine>(std::vector<unsigned>{3, 7});
        engine = e.get();
        return e;
      },
      popt);
  const CampaignResult r = runner.run(spec);
  EXPECT_EQ(r.total(), 12u);
  EXPECT_TRUE(r.quarantined.empty());
  // One recover() call per transient failure, before the retry.
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->recoveries(), 2u);
}

TEST(RetryPolicy, PersistentTransientErrorQuarantinesOnlyThatExperiment) {
  CampaignSpec spec;
  spec.experiments = 12;
  ParallelOptions popt;
  popt.jobs = 3;
  popt.experimentAttempts = 3;
  ParallelCampaignRunner runner(
      [] {
        return std::make_unique<FlakyEngine>(std::vector<unsigned>{},
                                             /*failForever=*/5);
      },
      popt);
  const CampaignResult r = runner.run(spec);
  EXPECT_EQ(r.total(), 11u);
  ASSERT_EQ(r.quarantined.size(), 1u);
  EXPECT_EQ(r.quarantined[0].index, 5u);
  EXPECT_EQ(r.quarantined[0].kind, ErrorKind::LinkError);
  EXPECT_EQ(r.quarantined[0].attempts, 3u);
}

TEST(RetryPolicy, FatalErrorsStillAbortTheCampaign) {
  CampaignSpec spec;
  spec.experiments = 12;
  ParallelOptions popt;
  popt.jobs = 2;
  ParallelCampaignRunner runner(
      [] {
        // ConfigError is not transient: no retry, no quarantine.
        return std::make_unique<FlakyEngine>(std::vector<unsigned>{},
                                             /*failForever=*/4,
                                             ErrorKind::ConfigError);
      },
      popt);
  EXPECT_THROW(runner.run(spec), FadesError);
}

// ------------------------------------------------- crash-safe writers -----

TEST(CrashSafeWriters, ArtifactWriterLeavesNoTmpBehind) {
  TempPath path("robustness_artifact_out.json");
  obs::writeFile(path.str, "{\"ok\": true}\n");
  EXPECT_EQ(readWholeFile(path.str), "{\"ok\": true}\n");
  std::FILE* tmp = std::fopen((path.str + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST(CrashSafeWriters, ArtifactWriterReportsUnwritablePath) {
  EXPECT_THROW(
      obs::writeFile("robustness_no_such_dir/artifact.json", "content"),
      std::runtime_error);
}

TEST(CrashSafeWriters, ReportWriterLeavesNoTmpBehind) {
  TempPath path("robustness_report_out.md");
  campaign::writeTextFile(path.str, "## report\n");
  EXPECT_EQ(readWholeFile(path.str), "## report\n");
  std::FILE* tmp = std::fopen((path.str + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST(CrashSafeWriters, ReportWriterReportsUnwritablePath) {
  EXPECT_THROW(
      campaign::writeTextFile("robustness_no_such_dir/report.md", "content"),
      FadesError);
}

}  // namespace
}  // namespace fades
