// Compile-time reconfiguration (CTR) support: saboteur instrumentation.
//
// The paper contrasts its run-time technique with compile-time
// reconfiguration (Civera et al., discussed in Section 7.3): CTR instruments
// the HDL model with extra "saboteur" logic that can corrupt chosen signals
// under the control of dedicated injection inputs, then implements the
// instrumented model once. Injection is then fast (drive the control pins),
// but the instrumented model is bigger, each change of the target set needs
// a re-implementation, and the saboteurs disturb timing.
//
// instrumentWithSaboteurs() rebuilds a netlist with an inverting saboteur
// spliced into every selected net:
//
//     consumers(net)  <-  net XOR (sab_enable AND sel == index)
//
// plus two new input ports, `sab_enable` and `sab_select` (the select port
// is omitted in the degenerate single-target case, where `sab_enable` alone
// drives the lone saboteur).
//
// instrumentAutonomous() goes one step further, into the autonomous
// emulation of Lopez-Ongil et al. ("Techniques for Fast Transient Fault
// Grading Based on Autonomous Emulation"): injection support is compiled
// into the design itself, so one injection moves zero configuration bytes.
// Every flip-flop gains
//   - an injection-mask register, loadable through a scan-style chain
//     (`am_scan_in` / `am_shift`, observable on `am_scan_out`), and an XOR
//     on its D input that fires while `am_inject` is high;
//   - a shadow flip-flop that mirrors the main state while `am_capture` is
//     high and freezes the golden state when it drops; asserting
//     `am_restore` for ONE cycle copies the shadow back into the main
//     flip-flops - the single-cycle faulty->golden restore that replaces
//     the RTR technique's bitstream re-download.
// Every writable memory block gains a shadow copy whose writes are gated by
// `am_capture`, holding the golden contents the restore sweep replays.
// With every control input at 0 the instrumented model is cycle-accurate
// equivalent to the source model.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace fades::synth {

struct InstrumentedModel {
  netlist::Netlist netlist;
  /// selector value (drive on `sab_select`) per instrumented target net.
  std::vector<std::pair<netlist::NetId, std::uint32_t>> selectors;
  /// Width of `sab_select`; 0 for a single target (no select port at all).
  unsigned selectBits = 0;
  std::size_t saboteurGates = 0;  // instrumentation overhead, in gates
};

/// Build the instrumented model. `targets` are nets of the source netlist
/// (they must not be input-port nets, and each net may appear only once -
/// a duplicate would chain two saboteurs onto one site and is rejected
/// with a ConfigError naming the net). Consumers of each target - gate
/// inputs, flop D pins, RAM pins, output ports - are rewired to the
/// saboteur's output; the original driver is untouched.
InstrumentedModel instrumentWithSaboteurs(
    const netlist::Netlist& source,
    const std::vector<netlist::NetId>& targets);

/// The autonomous-emulation instrumented model, with its exact area
/// overhead. Indices below refer to the SOURCE netlist (instrumentation is
/// additive: source element ids stay valid in `netlist`).
struct AutonomousModel {
  netlist::Netlist netlist;
  /// Mask scan-chain order: chain position p is the mask of source flop
  /// `chain[p]`. To arm exactly that flop, shift `chainBits` bits through
  /// `am_scan_in` with the 1 presented at step chainBits-1-p.
  std::vector<netlist::FlopId> chain;
  /// Scan-chain length == number of mask registers (one mask-load charge).
  unsigned chainBits = 0;
  // --- exact area overhead of the instrumentation -------------------------
  std::size_t addedGates = 0;
  std::size_t addedFlops = 0;     // mask + shadow flip-flops
  std::size_t shadowRamBits = 0;  // golden-copy memory bits
};

/// Instrument `source` for autonomous emulation. `flops` selects which
/// flip-flops receive an injection mask (empty = all of them); every
/// flip-flop receives a shadow regardless, so restore is always complete.
/// Duplicate entries in `flops` are rejected with a ConfigError naming the
/// flip-flop (same validation as instrumentWithSaboteurs's target nets).
AutonomousModel instrumentAutonomous(
    const netlist::Netlist& source,
    const std::vector<netlist::FlopId>& flops = {});

}  // namespace fades::synth
