// Cycle-accurate instruction-set simulator for the MC8051 subset.
//
// Functional reference model used to validate the RTL core: it executes the
// same programs with identical architectural semantics AND identical cycle
// counts (the RTL control FSM's state sequence is mirrored here), so traces
// can be compared at any cycle boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "mc8051/isa.hpp"

namespace fades::mc8051 {

/// One golden-run cycle: the PC of the instruction occupying the core on
/// that cycle and its opcode byte. Produced by Iss::tracePcPerCycle.
struct PcSample {
  std::uint16_t pc = 0;
  std::uint8_t opcode = 0;
};

class Iss {
 public:
  explicit Iss(std::vector<std::uint8_t> program);

  /// Reset to power-on state (PC=0, SP=7, IRAM/SFRs cleared).
  void reset();

  /// Execute one instruction; returns the number of clock cycles the RTL
  /// core spends on it.
  unsigned stepInstruction();

  /// Run whole instructions while the total cycle count stays <= cycles.
  void runCycles(std::uint64_t cycles);

  /// Golden-run PC attribution: reset, execute at least `cycles` cycles and
  /// return one sample per cycle - the PC and opcode of the instruction in
  /// flight on that cycle. Because the ISS mirrors the RTL FSM's cycle
  /// counts, sample[c] names the instruction the core is executing when a
  /// fault lands at cycle c. Leaves the simulator reset afterwards.
  std::vector<PcSample> tracePcPerCycle(std::uint64_t cycles);

  std::uint64_t cycleCount() const { return cycles_; }

  // --- architectural state -------------------------------------------------
  std::uint16_t pc() const { return pc_; }
  std::uint8_t acc() const { return acc_; }
  std::uint8_t b() const { return b_; }
  std::uint8_t sp() const { return sp_; }
  std::uint8_t psw() const;  // includes the computed parity bit
  std::uint8_t p0() const { return p0_; }
  std::uint8_t p1() const { return p1_; }
  std::uint8_t iram(std::uint8_t addr) const { return iram_[addr & 0x7F]; }
  void setIram(std::uint8_t addr, std::uint8_t v) { iram_[addr & 0x7F] = v; }
  std::uint8_t reg(unsigned n) const;  // banked R0..R7

  bool carry() const { return cy_; }

 private:
  std::uint8_t fetch();
  std::uint8_t readDirect(std::uint8_t addr) const;
  void writeDirect(std::uint8_t addr, std::uint8_t v);
  std::uint8_t regBankBase() const { return static_cast<std::uint8_t>(((pswBits_ >> 3) & 3) * 8); }
  void addToAcc(std::uint8_t operand, bool withCarry, bool subtract);

  std::vector<std::uint8_t> rom_;
  std::uint8_t iram_[128] = {};
  std::uint16_t pc_ = 0;
  std::uint8_t acc_ = 0, b_ = 0, sp_ = 7;
  std::uint8_t dpl_ = 0, dph_ = 0, p0_ = 0, p1_ = 0;
  std::uint8_t pswBits_ = 0;  // F0, RS1, RS0 (and storage for OV/AC)
  bool cy_ = false, ac_ = false, ov_ = false;
  std::uint64_t cycles_ = 0;
};

}  // namespace fades::mc8051
