// VFIT - the VHDL-simulator fault-injection baseline (paper Section 6).
//
// VFIT applies the "simulator commands" technique: the model executes on an
// event-driven simulator and faults are injected by forcing signals and
// depositing register/memory values. Its execution time is dominated by
// simulating the model on the host CPU, which is why the paper reports very
// similar times for every fault type and length (Section 6.2); the cost
// model reproduces that behaviour from real counted simulation events.
//
// Like the original tool, delay faults are NOT supported: the model would
// need explicit generic delay clauses, which it does not have (the paper
// could not run the delay comparison either, Table 3).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "campaign/parallel.hpp"
#include "campaign/types.hpp"
#include "common/rng.hpp"
#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace fades::vfit {

using campaign::CampaignResult;
using campaign::CampaignSpec;
using campaign::FaultModel;
using campaign::Observation;
using campaign::Outcome;
using campaign::TargetClass;
using netlist::FlopId;
using netlist::NetId;
using netlist::Netlist;
using netlist::RamId;
using netlist::Unit;

struct VfitOptions {
  /// Host CPU cost per simulation event (gate evaluation / state update).
  /// Calibrated so one full workload simulation lands near the paper's
  /// 7.2 s-per-experiment VFIT average on a 2006-class workstation.
  double secondsPerEvent = 9.6e-7;
  /// Simulator-command (force/release/deposit) scripting overhead.
  double secondsPerCommand = 0.0005;
  /// Fixed per-experiment cost: restart, trace set-up, result dump.
  double secondsFixedPerExperiment = 0.35;
  /// Output ports whose traces define Failure.
  std::vector<std::string> observedOutputs = {"p0", "p1"};
  /// Host-side replay checkpoint spacing (pure wall-clock optimization; does
  /// not affect modeled cost, which always charges the full run).
  unsigned checkpointInterval = 128;
  /// Re-randomize indetermination values every cycle of the fault.
  bool oscillatingIndetermination = false;
  /// Keep per-experiment records in the campaign result.
  bool keepRecords = false;
  /// Execution engine for campaign experiments. EventDriven replays each
  /// experiment from a golden checkpoint on the event-driven simulator;
  /// Compiled packs up to 63 experiments per 64-lane bit-parallel wave.
  /// Either way outcomes, records and modeled costs are bit-identical: the
  /// golden run (and therefore the modeled cost calibration) always comes
  /// from the event-driven engine, and the CompiledEquivalence suite pins
  /// the fault semantics to it.
  sim::EngineKind engine = sim::EngineKind::EventDriven;
  /// Prefix for the obs counters this tool bumps ("<prefix>.commands",
  /// "<prefix>.experiments") and its campaign span. The autonomous backend
  /// reuses VfitTool as its semantic engine under its own prefix, so the two
  /// injectors stay separable in the metrics snapshot.
  std::string metricsPrefix = "vfit";
};

class VfitTool {
 public:
  /// The netlist is the HDL model; runCycles is the workload length.
  VfitTool(const Netlist& netlist, std::uint64_t runCycles,
           VfitOptions options = {});

  bool supports(FaultModel m) const { return m != FaultModel::Delay; }

  // --- fault-location process (model level) -----------------------------
  std::vector<FlopId> flopTargets(Unit unit) const;
  /// Named combinational signals (HDL-level view: only signals that exist
  /// by name in the model, the way a VHDL tool sees them).
  std::vector<NetId> signalTargets(Unit unit) const;
  std::vector<RamId> ramTargets() const;

  CampaignResult runCampaign(const CampaignSpec& spec);

  /// Deterministic target enumeration for a spec (the fault-location
  /// process); shared by the serial loop, the parallel runner and the
  /// bit-parallel wave path.
  std::vector<std::uint32_t> campaignPool(const CampaignSpec& spec) const;

  /// Campaign experiment `index` as a pure function of (spec, pool, index),
  /// on the event-driven engine. This is the per-index unit the parallel
  /// runner shards and the reference the compiled wave path must match
  /// field-for-field.
  campaign::ExperimentOutcome runCampaignExperiment(
      const CampaignSpec& spec, std::span<const std::uint32_t> pool,
      unsigned index);

  /// Experiments per compiled wave: 63 faulty lanes; lane 0 stays golden
  /// and is checked against the event-driven golden run every wave.
  static constexpr unsigned kWaveExperiments =
      sim::CompiledSimulator::kLanes - 1;

  /// Run the experiments named by `indices` (at most kWaveExperiments) in
  /// one bit-parallel pass on the compiled engine. Lane assignment is
  /// irrelevant to the result - lanes are independent machines - so partial
  /// waves and arbitrary index subsets return exactly what
  /// runCampaignExperiment returns per index. Requires engine == Compiled.
  std::vector<campaign::ExperimentOutcome> runCampaignWave(
      const CampaignSpec& spec, std::span<const std::uint32_t> pool,
      std::span<const unsigned> indices);

  sim::EngineKind engine() const { return opt_.engine; }

  /// Single experiment; exposed for tests. `commandsOut` reports how many
  /// simulator commands (force / release / deposit) the injection issued.
  Outcome runExperiment(FaultModel model, TargetClass targets,
                        std::uint32_t targetIndex, std::uint64_t injectCycle,
                        double durationCycles, common::Rng& rng,
                        double* modeledSeconds = nullptr,
                        unsigned* commandsOut = nullptr);

  const Observation& golden() const { return golden_; }
  double goldenModelSeconds() const { return goldenSeconds_; }

  /// Pre-drawn fault script of one experiment: every random draw of the
  /// serial loop + runExperiment, in the identical order, so the wave path
  /// consumes the per-experiment RNG stream exactly as the event-driven
  /// path does. Public because the autonomous backend re-meters the same
  /// plan (command count, window) under its own cost model.
  struct LanePlan {
    unsigned index = 0;
    std::uint32_t target = 0;
    std::uint64_t injectCycle = 0;
    double duration = 0;
    std::uint64_t window = 0;  // active cycles, clipped to the workload end
    unsigned commands = 0;
    std::vector<std::uint8_t> values;  // indetermination value per cycle
  };
  LanePlan planExperiment(const CampaignSpec& spec,
                          std::span<const std::uint32_t> pool,
                          unsigned index) const;

  /// Materialize experiment `index` from its fades.prune/1 class
  /// representative without simulating: the cost model is a pure function
  /// of the experiment's own plan (re-derived here), and the behavioral
  /// outcome is cloned from the representative the plan proved equivalent.
  campaign::ExperimentOutcome synthesizeCampaignExperiment(
      const CampaignSpec& spec, std::span<const std::uint32_t> pool,
      unsigned index, const campaign::ExperimentOutcome& representative) const;

 private:
  Unit targetUnit(const CampaignSpec& spec, std::uint32_t target) const;
  campaign::ExperimentOutcome makeOutcome(const CampaignSpec& spec,
                                          const LanePlan& plan,
                                          Outcome outcome) const;
  Observation observeRun(std::uint64_t fromCycle,
                         const std::vector<std::uint64_t>& prefixOutputs);
  std::uint64_t outputWord() const;
  void captureFinalState(Observation& obs) const;
  const sim::Snapshot& checkpointAtOrBefore(std::uint64_t cycle,
                                            std::uint64_t& ckCycle) const;

  const Netlist& nl_;
  std::uint64_t runCycles_;
  VfitOptions opt_;
  std::unique_ptr<sim::Simulator> sim_;
  /// Built only when opt_.engine == Compiled; campaign waves run here.
  std::unique_ptr<sim::CompiledSimulator> csim_;
  /// Observed output nets with their packed bit positions (outputWord
  /// layout: 16 bits per observed port), cached for the wave inner loop.
  std::vector<std::pair<unsigned, std::uint32_t>> obsBits_;

  Observation golden_;
  std::vector<sim::Snapshot> checkpoints_;  // every checkpointInterval cycles
  std::uint64_t goldenEvents_ = 0;
  double goldenSeconds_ = 0;
};

/// One worker's VFIT replica for the sharded campaign runner - the
/// simulator-side counterpart of FadesCampaignEngine. With the compiled
/// engine selected it leases whole waves (waveWidth() = 63) and runs them
/// bit-parallel; outcomes stay bit-identical to the event-driven engine at
/// any --jobs.
class VfitCampaignEngine final : public campaign::CampaignEngine {
 public:
  VfitCampaignEngine(const Netlist& netlist, std::uint64_t runCycles,
                     VfitOptions options);

  std::vector<std::uint32_t> enumeratePool(const CampaignSpec& spec) override;
  campaign::ExperimentOutcome runExperimentAt(
      const CampaignSpec& spec, std::span<const std::uint32_t> pool,
      unsigned index, unsigned rerun) override;
  unsigned waveWidth() const override;
  std::vector<campaign::ExperimentOutcome> runWaveAt(
      const CampaignSpec& spec, std::span<const std::uint32_t> pool,
      std::span<const unsigned> indices, unsigned rerun) override;
  campaign::ExperimentOutcome synthesizeOutcome(
      const CampaignSpec& spec, std::span<const std::uint32_t> pool,
      unsigned index, const campaign::ExperimentOutcome& representative)
      override;

  VfitTool& tool() { return tool_; }

 private:
  VfitTool tool_;
};

/// Factory for the parallel campaign runner: every worker gets its own
/// VfitTool replica (each pays the golden run in its own thread). The
/// netlist reference must outlive the runner.
campaign::EngineFactory vfitEngineFactory(const Netlist& netlist,
                                          std::uint64_t runCycles,
                                          VfitOptions options = {});

}  // namespace fades::vfit
