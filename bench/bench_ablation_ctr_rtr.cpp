// Ablation (paper Section 7.3): compile-time reconfiguration (CTR, saboteur
// instrumentation) vs run-time reconfiguration (RTR, this framework).
//
// CTR instruments the model with saboteurs and implements the instrumented
// version; injection is then just driving control pins (no reconfiguration),
// but the instrumentation bloats the implementation and every change of the
// target set requires re-running synthesis/place/route. RTR implements the
// ORIGINAL model exactly once and pays per-fault reconfiguration instead.
// The paper: RTR "outperforms this other technique by requiring only one
// implementation. Hence, it is a very suitable technique for fault emulation
// in large systems."
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "synth/instrument.hpp"

using namespace fades;
using namespace fades::bench;

int main(int argc, char** argv) {
  BenchRun benchRun("ablation_ctr_rtr", argc, argv);
  System8051 sys;
  sys.printHeadline();
  using Clock = std::chrono::steady_clock;

  // RTR: the original implementation (already built by System8051).
  const auto& rtrImpl = sys.implementation();

  // CTR: instrument a batch of combinational signals with saboteurs and
  // re-implement. One batch = one target-set; a full campaign over all
  // signal groups needs ceil(S / batch) implementations.
  const auto& nl = sys.netlist();
  std::vector<netlist::NetId> signals;
  for (const auto& g : nl.gates()) {
    if (!nl.netName(g.out).empty() &&
        g.op != netlist::GateOp::Const0 && g.op != netlist::GateOp::Const1) {
      signals.push_back(g.out);
    }
  }
  const std::size_t batch = 32;  // saboteur select width: 5 bits
  std::vector<netlist::NetId> firstBatch(
      signals.begin(),
      signals.begin() + std::min(batch, signals.size()));

  const auto t0 = Clock::now();
  const auto inst = synth::instrumentWithSaboteurs(nl, firstBatch);
  const auto ctrImpl =
      synth::implement(inst.netlist, fpga::DeviceSpec::virtex1000Like());
  const double ctrImplementSeconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const std::size_t implementationsNeeded =
      (signals.size() + batch - 1) / batch;

  printTable(
      "Ablation - CTR (saboteurs) vs RTR (this framework), Section 7.3",
      {"aspect", "CTR", "RTR"},
      {{"implementations for " + std::to_string(signals.size()) +
            " instrumentable signals",
        std::to_string(implementationsNeeded) + " (batch of " +
            std::to_string(batch) + ")",
        "1"},
       {"LUTs", std::to_string(ctrImpl.stats.luts) + " (instrumented)",
        std::to_string(rtrImpl.stats.luts) + " (original)"},
       {"instrumentation gates / batch",
        std::to_string(inst.saboteurGates), "0"},
       {"host implement time / run (this machine, s)",
        common::fixed(ctrImplementSeconds, 2) + " x " +
            std::to_string(implementationsNeeded),
        common::fixed(ctrImplementSeconds, 2) + " x 1"},
       {"per-fault injection", "drive sab_enable/sab_select (fast)",
        "partial reconfiguration (~0.2-0.9 s modeled)"}});

  std::printf(
      "CTR amortizes badly as the model grows: every target-set change costs "
      "another full implementation,\nwhile RTR reuses one bitstream for every "
      "fault model and location - the paper's Section 7.3 argument.\n");
  return 0;
}
