file(REMOVE_RECURSE
  "CMakeFiles/fades_netlist.dir/netlist.cpp.o"
  "CMakeFiles/fades_netlist.dir/netlist.cpp.o.d"
  "libfades_netlist.a"
  "libfades_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fades_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
