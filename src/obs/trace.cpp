#include "obs/trace.hpp"

#include <cstdlib>
#include <functional>
#include <thread>

namespace fades::obs {

namespace {

std::uint32_t currentTid() {
  return static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7FFFFFFF);
}

}  // namespace

std::uint64_t TraceBuffer::nowMicros() {
  static const auto start = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(256);
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  static const bool init = [] {
    if (const char* v = std::getenv("FADES_TRACE")) {
      buffer.setEnabled(!(v[0] == '0' && v[1] == '\0'));
    }
    (void)buffer.nowMicros();  // anchor the span clock at first use
    return true;
  }();
  (void)init;
  return buffer;
}

void TraceBuffer::record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::vector<SpanRecord> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Oldest first: the ring cursor points at the oldest entry once wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

Json TraceBuffer::chromeTraceJson() const {
  Json events = Json::array();
  for (const auto& r : snapshot()) {
    Json e = Json::object();
    e.set("name", r.name);
    e.set("cat", "fades");
    e.set("ph", "X");
    e.set("ts", r.beginMicros);
    e.set("dur", r.durMicros);
    e.set("pid", 1);
    e.set("tid", static_cast<std::uint64_t>(r.tid));
    if (!r.args.empty()) {
      Json args = Json::object();
      for (const auto& a : r.args) args.set(a.key, a.value);
      e.set("args", std::move(args));
    }
    events.push(std::move(e));
  }
  Json out = Json::object();
  out.set("traceEvents", std::move(events));
  out.set("displayTimeUnit", "ms");
  return out;
}

Span::Span(std::string name,
           std::initializer_list<std::pair<std::string, std::string>> args,
           TraceBuffer& buffer)
    : buffer_(buffer) {
  if (!buffer_.enabled()) return;
  active_ = true;
  record_.name = std::move(name);
  record_.tid = currentTid();
  for (const auto& [k, v] : args) record_.args.push_back({k, v});
  record_.beginMicros = TraceBuffer::nowMicros();
}

void Span::setArg(const std::string& key, std::string value) {
  if (!active_) return;
  for (auto& a : record_.args) {
    if (a.key == key) {
      a.value = std::move(value);
      return;
    }
  }
  record_.args.push_back({key, std::move(value)});
}

Span::~Span() {
  if (!active_) return;
  record_.durMicros = TraceBuffer::nowMicros() - record_.beginMicros;
  buffer_.record(std::move(record_));
}

}  // namespace fades::obs
