#include "mc8051/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "mc8051/isa.hpp"

namespace fades::mc8051 {

using common::ErrorKind;
using common::raise;
using common::require;

namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

struct Operand {
  enum class Kind { Immediate, Direct, Register, Indirect, A, Symbol, Here };
  Kind kind{};
  std::int64_t value = 0;      // immediate / direct value when numeric
  unsigned reg = 0;            // Rn / @Ri index
  std::string symbol;          // for label or .equ references
  bool immediate = false;      // '#' prefix present
};

struct Statement {
  int line = 0;
  std::string label;
  std::string mnemonic;  // upper-case
  std::vector<Operand> operands;
};

std::optional<std::int64_t> parseNumber(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  std::size_t pos = 0;
  int base = 10;
  std::string body = tok;
  if (body.size() > 2 && body[0] == '0' && (body[1] == 'x' || body[1] == 'X')) {
    base = 16;
    body = body.substr(2);
  } else if (body.size() > 1 && (body.back() == 'h' || body.back() == 'H')) {
    base = 16;
    body = body.substr(0, body.size() - 1);
  }
  try {
    const std::int64_t v = std::stoll(body, &pos, base);
    if (pos != body.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<std::uint8_t> sfrByName(const std::string& name) {
  const std::string u = upper(name);
  if (u == "A" || u == "ACC") return SFR_ACC;
  if (u == "B") return SFR_B;
  if (u == "PSW") return SFR_PSW;
  if (u == "SP") return SFR_SP;
  if (u == "DPL") return SFR_DPL;
  if (u == "DPH") return SFR_DPH;
  if (u == "P0") return SFR_P0;
  if (u == "P1") return SFR_P1;
  return std::nullopt;
}

Operand parseOperand(const std::string& raw, int line) {
  Operand op;
  std::string tok = trim(raw);
  require(!tok.empty(), ErrorKind::WorkloadError,
          "empty operand at line " + std::to_string(line));
  if (tok == "$") {
    op.kind = Operand::Kind::Here;
    return op;
  }
  if (tok[0] == '#') {
    op.immediate = true;
    tok = trim(tok.substr(1));
  }
  if (tok.size() >= 2 && (tok[0] == '@' || tok[0] == '@')) {
    const std::string r = upper(trim(tok.substr(1)));
    require(r == "R0" || r == "R1", ErrorKind::WorkloadError,
            "only @R0/@R1 are valid at line " + std::to_string(line));
    op.kind = Operand::Kind::Indirect;
    op.reg = (r == "R1") ? 1 : 0;
    return op;
  }
  const std::string u = upper(tok);
  if (u.size() == 2 && u[0] == 'R' && u[1] >= '0' && u[1] <= '7' &&
      !op.immediate) {
    op.kind = Operand::Kind::Register;
    op.reg = static_cast<unsigned>(u[1] - '0');
    return op;
  }
  if (u == "A" && !op.immediate) {
    op.kind = Operand::Kind::A;
    return op;
  }
  if (const auto num = parseNumber(tok)) {
    op.kind = op.immediate ? Operand::Kind::Immediate : Operand::Kind::Direct;
    op.value = *num;
    return op;
  }
  if (const auto sfr = sfrByName(tok); sfr && !op.immediate) {
    op.kind = Operand::Kind::Direct;
    op.value = *sfr;
    return op;
  }
  op.kind = Operand::Kind::Symbol;
  op.symbol = tok;
  return op;
}

std::vector<Statement> parse(const std::string& source) {
  std::vector<Statement> out;
  std::istringstream in(source);
  std::string lineText;
  int lineNo = 0;
  while (std::getline(in, lineText)) {
    ++lineNo;
    if (const auto sc = lineText.find(';'); sc != std::string::npos) {
      lineText = lineText.substr(0, sc);
    }
    std::string text = trim(lineText);
    if (text.empty()) continue;

    Statement st;
    st.line = lineNo;
    if (const auto colon = text.find(':'); colon != std::string::npos) {
      st.label = trim(text.substr(0, colon));
      text = trim(text.substr(colon + 1));
    }
    if (!text.empty()) {
      const auto sp = text.find_first_of(" \t");
      st.mnemonic = upper(sp == std::string::npos ? text : text.substr(0, sp));
      if (sp != std::string::npos) {
        const std::string args = text.substr(sp + 1);
        std::string cur;
        for (char ch : args) {
          if (ch == ',') {
            st.operands.push_back(parseOperand(cur, lineNo));
            cur.clear();
          } else {
            cur += ch;
          }
        }
        if (!trim(cur).empty()) st.operands.push_back(parseOperand(cur, lineNo));
      }
    }
    out.push_back(std::move(st));
  }
  return out;
}

struct Emitter {
  std::vector<std::uint8_t> bytes;
  std::map<std::string, std::uint16_t> symbols;
  bool resolvePass = false;

  struct Fixup {};

  void at(std::size_t addr) {
    if (bytes.size() < addr) bytes.resize(addr, 0);
  }
  void emit(std::uint8_t b) { bytes.push_back(b); }
  std::uint16_t pc() const { return static_cast<std::uint16_t>(bytes.size()); }
};

}  // namespace

std::uint16_t AssembledProgram::symbol(const std::string& name) const {
  for (const auto& [n, v] : symbols) {
    if (n == name) return v;
  }
  raise(ErrorKind::WorkloadError, "unknown symbol '" + name + "'");
}

AssembledProgram assemble(const std::string& source) {
  const auto statements = parse(source);

  std::map<std::string, std::uint16_t> symbols;

  // Resolve an operand value given the symbol table (pass 2) or optimistic
  // zero (pass 1 - only instruction LENGTH matters then, which is fixed).
  auto valueOf = [&](const Operand& op, std::uint16_t here, int line,
                     bool final) -> std::int64_t {
    switch (op.kind) {
      case Operand::Kind::Here:
        return here;
      case Operand::Kind::Symbol: {
        const auto it = symbols.find(op.symbol);
        if (it == symbols.end()) {
          require(!final, ErrorKind::WorkloadError,
                  "undefined symbol '" + op.symbol + "' at line " +
                      std::to_string(line));
          return 0;
        }
        return it->second;
      }
      default:
        return op.value;
    }
  };

  auto assemblePass = [&](bool final) -> std::vector<std::uint8_t> {
    std::vector<std::uint8_t> bytes;
    auto emit = [&](std::int64_t v) {
      require(!final || (v >= -128 && v <= 255), ErrorKind::WorkloadError,
              "byte out of range");
      bytes.push_back(static_cast<std::uint8_t>(v & 0xFF));
    };
    auto rel = [&](std::int64_t target, int line) {
      const std::int64_t off =
          target - (static_cast<std::int64_t>(bytes.size()) + 1);
      require(!final || (off >= -128 && off <= 127), ErrorKind::WorkloadError,
              "branch out of range at line " + std::to_string(line));
      bytes.push_back(static_cast<std::uint8_t>(off & 0xFF));
    };

    for (const auto& st : statements) {
      const auto pc = static_cast<std::uint16_t>(bytes.size());
      if (!st.label.empty() && st.mnemonic != ".EQU") {
        if (!final) symbols[st.label] = pc;
      }
      if (st.mnemonic.empty()) continue;
      const auto& ops = st.operands;
      auto val = [&](unsigned i) { return valueOf(ops[i], pc, st.line, final); };
      auto need = [&](std::size_t n) {
        require(ops.size() == n, ErrorKind::WorkloadError,
                "wrong operand count for " + st.mnemonic + " at line " +
                    std::to_string(st.line));
      };
      auto badOperands = [&]() -> void {
        raise(ErrorKind::WorkloadError,
              "unsupported operands for " + st.mnemonic + " at line " +
                  std::to_string(st.line));
      };
      auto kind = [&](unsigned i) { return ops[i].kind; };
      auto isDirect = [&](unsigned i) {
        return kind(i) == Operand::Kind::Direct ||
               (kind(i) == Operand::Kind::Symbol && !ops[i].immediate);
      };
      auto isImm = [&](unsigned i) { return ops[i].immediate; };

      if (st.mnemonic == ".ORG") {
        need(1);
        const auto target = static_cast<std::size_t>(val(0));
        require(target >= bytes.size(), ErrorKind::WorkloadError,
                ".org going backwards at line " + std::to_string(st.line));
        bytes.resize(target, 0);
        continue;
      }
      if (st.mnemonic == ".EQU") {
        need(1);
        require(!st.label.empty(), ErrorKind::WorkloadError,
                ".equ without a label at line " + std::to_string(st.line));
        if (!final) symbols[st.label] = static_cast<std::uint16_t>(val(0));
        continue;
      }
      if (st.mnemonic == ".DB") {
        for (unsigned i = 0; i < ops.size(); ++i) emit(val(i));
        continue;
      }

      if (st.mnemonic == "NOP") {
        need(0);
        emit(OP_NOP);
      } else if (st.mnemonic == "MOV") {
        need(2);
        if (kind(0) == Operand::Kind::A && isImm(1)) {
          emit(OP_MOV_A_IMM);
          emit(val(1));
        } else if (kind(0) == Operand::Kind::A && isDirect(1)) {
          emit(OP_MOV_A_DIR);
          emit(val(1));
        } else if (kind(0) == Operand::Kind::A &&
                   kind(1) == Operand::Kind::Register) {
          emit(OP_MOV_A_RN + ops[1].reg);
        } else if (kind(0) == Operand::Kind::A &&
                   kind(1) == Operand::Kind::Indirect) {
          emit(OP_MOV_A_IND + ops[1].reg);
        } else if (kind(0) == Operand::Kind::Register && isImm(1)) {
          emit(OP_MOV_RN_IMM + ops[0].reg);
          emit(val(1));
        } else if (kind(0) == Operand::Kind::Register &&
                   kind(1) == Operand::Kind::A) {
          emit(OP_MOV_RN_A + ops[0].reg);
        } else if (kind(0) == Operand::Kind::Register && isDirect(1)) {
          emit(OP_MOV_RN_DIR + ops[0].reg);
          emit(val(1));
        } else if (kind(0) == Operand::Kind::Indirect && isImm(1)) {
          emit(OP_MOV_IND_IMM + ops[0].reg);
          emit(val(1));
        } else if (kind(0) == Operand::Kind::Indirect &&
                   kind(1) == Operand::Kind::A) {
          emit(OP_MOV_IND_A + ops[0].reg);
        } else if (isDirect(0) && kind(1) == Operand::Kind::A) {
          emit(OP_MOV_DIR_A);
          emit(val(0));
        } else if (isDirect(0) && isImm(1)) {
          emit(OP_MOV_DIR_IMM);
          emit(val(0));
          emit(val(1));
        } else if (isDirect(0) && kind(1) == Operand::Kind::Register) {
          emit(OP_MOV_DIR_RN + ops[1].reg);
          emit(val(0));
        } else if (isDirect(0) && isDirect(1)) {
          emit(OP_MOV_DIR_DIR);
          emit(val(1));  // src first (MCS-51 encoding quirk)
          emit(val(0));
        } else {
          badOperands();
        }
      } else if (st.mnemonic == "ADD" || st.mnemonic == "ADDC" ||
                 st.mnemonic == "SUBB") {
        need(2);
        require(kind(0) == Operand::Kind::A, ErrorKind::WorkloadError,
                st.mnemonic + " destination must be A at line " +
                    std::to_string(st.line));
        const std::uint8_t base = st.mnemonic == "ADD"    ? OP_ADD_IMM
                                  : st.mnemonic == "ADDC" ? OP_ADDC_IMM
                                                          : OP_SUBB_IMM;
        if (isImm(1)) {
          emit(base);
          emit(val(1));
        } else if (kind(1) == Operand::Kind::Indirect) {
          emit(base + 2 + ops[1].reg);
        } else if (kind(1) == Operand::Kind::Register) {
          emit(base + 4 + ops[1].reg);
        } else if (isDirect(1)) {
          emit(base + 1);
          emit(val(1));
        } else {
          badOperands();
        }
      } else if (st.mnemonic == "ANL" || st.mnemonic == "ORL" ||
                 st.mnemonic == "XRL") {
        need(2);
        require(kind(0) == Operand::Kind::A, ErrorKind::WorkloadError,
                st.mnemonic + " destination must be A at line " +
                    std::to_string(st.line));
        const std::uint8_t base = st.mnemonic == "ORL"   ? OP_ORL_A_IMM
                                  : st.mnemonic == "ANL" ? OP_ANL_A_IMM
                                                         : OP_XRL_A_IMM;
        if (isImm(1)) {
          emit(base);
          emit(val(1));
        } else if (kind(1) == Operand::Kind::Register) {
          emit(base + 4 + ops[1].reg);
        } else if (isDirect(1)) {
          emit(base + 1);
          emit(val(1));
        } else {
          badOperands();
        }
      } else if (st.mnemonic == "INC" || st.mnemonic == "DEC") {
        need(1);
        const std::uint8_t base =
            st.mnemonic == "INC" ? OP_INC_A : OP_DEC_A;
        if (kind(0) == Operand::Kind::A) {
          emit(base);
        } else if (kind(0) == Operand::Kind::Indirect) {
          emit(base + 2 + ops[0].reg);
        } else if (kind(0) == Operand::Kind::Register) {
          emit(base + 4 + ops[0].reg);
        } else if (isDirect(0)) {
          emit(base + 1);
          emit(val(0));
        } else {
          badOperands();
        }
      } else if (st.mnemonic == "CLR") {
        need(1);
        if (kind(0) == Operand::Kind::A) {
          emit(OP_CLR_A);
        } else if (upper(ops[0].symbol) == "C") {
          emit(OP_CLR_C);
        } else {
          badOperands();
        }
      } else if (st.mnemonic == "CPL") {
        need(1);
        if (kind(0) == Operand::Kind::A) {
          emit(OP_CPL_A);
        } else if (upper(ops[0].symbol) == "C") {
          emit(OP_CPL_C);
        } else {
          badOperands();
        }
      } else if (st.mnemonic == "SETB") {
        need(1);
        require(upper(ops[0].symbol) == "C", ErrorKind::WorkloadError,
                "only SETB C supported at line " + std::to_string(st.line));
        emit(OP_SETB_C);
      } else if (st.mnemonic == "MUL" || st.mnemonic == "DIV") {
        need(1);
        require(upper(ops[0].symbol) == "AB", ErrorKind::WorkloadError,
                st.mnemonic + " operand must be AB at line " +
                    std::to_string(st.line));
        emit(st.mnemonic == "MUL" ? OP_MUL_AB : OP_DIV_AB);
      } else if (st.mnemonic == "RL") {
        need(1);
        emit(OP_RL_A);
      } else if (st.mnemonic == "RR") {
        need(1);
        emit(OP_RR_A);
      } else if (st.mnemonic == "RLC") {
        need(1);
        emit(OP_RLC_A);
      } else if (st.mnemonic == "RRC") {
        need(1);
        emit(OP_RRC_A);
      } else if (st.mnemonic == "XCH") {
        need(2);
        require(kind(0) == Operand::Kind::A, ErrorKind::WorkloadError,
                "XCH first operand must be A at line " +
                    std::to_string(st.line));
        if (kind(1) == Operand::Kind::Register) {
          emit(OP_XCH_A_RN + ops[1].reg);
        } else if (isDirect(1)) {
          emit(OP_XCH_A_DIR);
          emit(val(1));
        } else {
          badOperands();
        }
      } else if (st.mnemonic == "PUSH" || st.mnemonic == "POP") {
        need(1);
        require(isDirect(0), ErrorKind::WorkloadError,
                st.mnemonic + " needs a direct address at line " +
                    std::to_string(st.line));
        emit(st.mnemonic == "PUSH" ? OP_PUSH : OP_POP);
        emit(val(0));
      } else if (st.mnemonic == "SJMP" || st.mnemonic == "JZ" ||
                 st.mnemonic == "JNZ" || st.mnemonic == "JC" ||
                 st.mnemonic == "JNC") {
        need(1);
        const std::uint8_t op = st.mnemonic == "SJMP" ? OP_SJMP
                                : st.mnemonic == "JZ" ? OP_JZ
                                : st.mnemonic == "JNZ" ? OP_JNZ
                                : st.mnemonic == "JC"  ? OP_JC
                                                       : OP_JNC;
        emit(op);
        rel(val(0), st.line);
      } else if (st.mnemonic == "LJMP" || st.mnemonic == "LCALL") {
        need(1);
        emit(st.mnemonic == "LJMP" ? OP_LJMP : OP_LCALL);
        const auto target = static_cast<std::uint16_t>(val(0));
        emit(target >> 8);
        emit(target & 0xFF);
      } else if (st.mnemonic == "RET") {
        need(0);
        emit(OP_RET);
      } else if (st.mnemonic == "CJNE") {
        need(3);
        if (kind(0) == Operand::Kind::A && isImm(1)) {
          emit(OP_CJNE_A_IMM);
          emit(val(1));
        } else if (kind(0) == Operand::Kind::A && isDirect(1)) {
          emit(OP_CJNE_A_DIR);
          emit(val(1));
        } else if (kind(0) == Operand::Kind::Register && isImm(1)) {
          emit(OP_CJNE_RN_IMM + ops[0].reg);
          emit(val(1));
        } else if (kind(0) == Operand::Kind::Indirect && isImm(1)) {
          emit(OP_CJNE_IND_IMM + ops[0].reg);
          emit(val(1));
        } else {
          badOperands();
        }
        rel(val(2), st.line);
      } else if (st.mnemonic == "DJNZ") {
        need(2);
        if (kind(0) == Operand::Kind::Register) {
          emit(OP_DJNZ_RN + ops[0].reg);
        } else if (isDirect(0)) {
          emit(OP_DJNZ_DIR);
          emit(val(0));
        } else {
          badOperands();
        }
        rel(val(1), st.line);
      } else {
        raise(ErrorKind::WorkloadError,
              "unknown mnemonic '" + st.mnemonic + "' at line " +
                  std::to_string(st.line));
      }
    }
    return bytes;
  };

  (void)assemblePass(false);       // pass 1: collect symbols
  auto bytes = assemblePass(true);  // pass 2: final encode

  AssembledProgram out;
  out.bytes = std::move(bytes);
  for (const auto& [name, value] : symbols) out.symbols.emplace_back(name, value);
  return out;
}

}  // namespace fades::mc8051
