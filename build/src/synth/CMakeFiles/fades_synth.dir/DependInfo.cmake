
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/implement.cpp" "src/synth/CMakeFiles/fades_synth.dir/implement.cpp.o" "gcc" "src/synth/CMakeFiles/fades_synth.dir/implement.cpp.o.d"
  "/root/repo/src/synth/instrument.cpp" "src/synth/CMakeFiles/fades_synth.dir/instrument.cpp.o" "gcc" "src/synth/CMakeFiles/fades_synth.dir/instrument.cpp.o.d"
  "/root/repo/src/synth/place.cpp" "src/synth/CMakeFiles/fades_synth.dir/place.cpp.o" "gcc" "src/synth/CMakeFiles/fades_synth.dir/place.cpp.o.d"
  "/root/repo/src/synth/route.cpp" "src/synth/CMakeFiles/fades_synth.dir/route.cpp.o" "gcc" "src/synth/CMakeFiles/fades_synth.dir/route.cpp.o.d"
  "/root/repo/src/synth/techmap.cpp" "src/synth/CMakeFiles/fades_synth.dir/techmap.cpp.o" "gcc" "src/synth/CMakeFiles/fades_synth.dir/techmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/fades_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/fades_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fades_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
