file(REMOVE_RECURSE
  "CMakeFiles/fades_campaign.dir/report.cpp.o"
  "CMakeFiles/fades_campaign.dir/report.cpp.o.d"
  "CMakeFiles/fades_campaign.dir/types.cpp.o"
  "CMakeFiles/fades_campaign.dir/types.cpp.o.d"
  "libfades_campaign.a"
  "libfades_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fades_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
