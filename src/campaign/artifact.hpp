// Campaign <-> observability bridge: serialize campaign specs, results and
// per-experiment records into the obs JSON model, and package a whole
// campaign as a versioned RunArtifact for offline analysis.
#pragma once

#include <string>

#include "campaign/types.hpp"
#include "obs/artifact.hpp"
#include "obs/json.hpp"

namespace fades::campaign {

obs::Json toJson(const DurationBand& band);
obs::Json toJson(const CampaignSpec& spec);
obs::Json toJson(const ExperimentRecord& record);

/// Inverse of toJson(ExperimentRecord), shared by the journal reader and
/// the analytics artifact loader. The attribution fields (component, pc,
/// opcode, detect_cycle) are optional: records written before vulnerability
/// analytics lack them and keep their defaults.
bool recordFromJson(const obs::Json& j, ExperimentRecord& out);
obs::Json toJson(const CostBreakdown& cost);
/// Full result: spec, outcome tallies/percentages, modeled-seconds summary,
/// cost decomposition and (when kept) per-experiment records.
obs::Json toJson(const CampaignResult& result);

/// Package one campaign as a `fades.run/1` artifact named `name`, with the
/// current global metrics snapshot attached. Pass includeMetrics = false to
/// omit the snapshot: it is process telemetry (replica setup, scheduling),
/// not campaign output, and is the one section that varies with `--jobs`.
obs::RunArtifact toRunArtifact(const CampaignResult& result,
                               const std::string& name,
                               bool includeMetrics = true);

}  // namespace fades::campaign
