// Distributed campaign service tests.
//
// Every scenario here runs coordinator and workers in-process over real
// loopback sockets - the same wire path the fades_coordinator/fades_worker
// binaries use - so the tests cover the protocol, not a mock of it. The
// chaos cases (vanished worker, coordinator restart) simulate SIGKILL by
// dropping connections / destroying the coordinator without any graceful
// goodbye; the crash-safe store is what must carry the state across.
//
// The load-bearing assertion throughout: the merged artifact text equals a
// serial in-process fold of the same JobSpec, byte for byte, at any worker
// count and under any kill schedule.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/parallel.hpp"
#include "campaign/types.hpp"
#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "service/coordinator.hpp"
#include "service/jobspec.hpp"
#include "service/wire.hpp"
#include "service/worker.hpp"

namespace fades {
namespace {

namespace fs = std::filesystem;
using obs::Json;

fs::path makeTempDir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("fades-service-test-" + tag + "-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// The fast multi-unit workload; every service test uses it so a full
/// campaign finishes in well under a second per worker.
service::JobSpec demoJob(unsigned experiments, std::uint64_t seed = 11) {
  service::JobSpec job;
  job.workload = "demo";
  job.spec.experiments = experiments;
  job.spec.seed = seed;
  return job;
}

/// Serial in-process reference: fold every experiment in index order through
/// the same buildSystem/runExperimentWithRetry path the workers use. This is
/// the byte-identity target for every distributed scenario.
std::string referenceArtifact(const service::JobSpec& job) {
  const auto system = service::buildSystem(job);
  const auto engine = system->factory();
  const auto pool = engine->enumeratePool(job.spec);
  campaign::CampaignResult result;
  result.spec = job.spec;
  auto& quarantined = obs::Registry::global().counter("test.quarantined");
  for (unsigned i = 0; i < job.spec.experiments; ++i) {
    result.fold(campaign::runExperimentWithRetry(*engine, job.spec, pool, i,
                                                 3, quarantined));
  }
  return service::artifactText(job, result);
}

/// Minimal raw-wire client: performs the hello handshake and exposes one
/// request/response exchange. Used to drive the coordinator into the edge
/// cases a well-behaved WorkerDaemon never produces.
class RawClient {
 public:
  RawClient(std::uint16_t port, const std::string& worker) : worker_(worker) {
    sock_ = service::connectTo("127.0.0.1", port, 2000);
    Json hello = Json::object();
    hello.set("type", Json(std::string("hello")));
    hello.set("schema", Json(std::string(service::kWireSchema)));
    hello.set("role", Json(std::string("worker")));
    hello.set("worker", Json(worker));
    service::sendMessage(sock_, hello);
    const auto welcome = service::recvMessage(sock_, 2000);
    if (!welcome) throw std::runtime_error("no welcome");
  }

  Json rpc(Json msg) {
    msg.set("worker", Json(worker_));
    service::sendMessage(sock_, msg);
    const auto reply = service::recvMessage(sock_, 5000);
    if (!reply) throw std::runtime_error("connection closed mid-rpc");
    return *reply;
  }

  Json lease() {
    Json msg = Json::object();
    msg.set("type", Json(std::string("lease_request")));
    return rpc(std::move(msg));
  }

  /// Drop the connection with no release - the wire-visible signature of a
  /// SIGKILLed worker.
  void vanish() { sock_.close(); }

  const std::string& name() const { return worker_; }

 private:
  service::Socket sock_;
  std::string worker_;
};

std::string typeOf(const Json& msg) {
  const Json* t = msg.find("type");
  return t != nullptr && t->isString() ? t->asString() : std::string();
}

std::uint64_t u64Of(const Json& msg, const char* key) {
  const Json* v = msg.find(key);
  return v != nullptr && v->isNumber()
             ? static_cast<std::uint64_t>(v->asInt())
             : 0;
}

std::string stringOf(const Json& msg, const char* key) {
  const Json* v = msg.find(key);
  return v != nullptr && v->isString() ? v->asString() : std::string();
}

/// Honest outcomes for one leased block, computed through the exact worker
/// discipline, serialized through the journal codec - what a correct worker
/// would stream back.
Json honestOutcomes(campaign::CampaignEngine& engine,
                    const campaign::CampaignSpec& spec,
                    const std::vector<std::uint32_t>& pool,
                    std::uint64_t first, std::uint64_t count) {
  auto& quarantined = obs::Registry::global().counter("test.quarantined");
  Json outcomes = Json::array();
  for (std::uint64_t i = first; i < first + count; ++i) {
    outcomes.push(campaign::CampaignJournal::outcomeJson(
        campaign::runExperimentWithRetry(engine, spec, pool,
                                         static_cast<unsigned>(i), 3,
                                         quarantined)));
  }
  return outcomes;
}

std::uint64_t counterValue(const std::string& name) {
  return obs::Registry::global().counter(name).value();
}

// ---------------------------------------------------------------------------
// Wire framing

TEST(ServiceWire, RoundTripAndCleanEof) {
  service::Listener listener(0);
  std::optional<service::Socket> serverSide;
  std::thread acceptor([&] {
    auto s = listener.accept(2000);
    ASSERT_TRUE(s.valid());
    serverSide.emplace(std::move(s));
  });
  service::Socket client =
      service::connectTo("127.0.0.1", listener.port(), 2000);
  acceptor.join();

  Json msg = Json::object();
  msg.set("type", Json(std::string("ping")));
  msg.set("payload", Json(std::string("x\ny\"z")));  // framing, not lines
  msg.set("n", Json(std::uint64_t(123456789012345ull)));
  service::sendMessage(client, msg);
  const auto got = service::recvMessage(*serverSide, 2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->dump(), msg.dump());

  // Clean EOF at a frame boundary is a disconnect, not an error.
  client.close();
  const auto eof = service::recvMessage(*serverSide, 2000);
  EXPECT_FALSE(eof.has_value());
}

TEST(ServiceWire, FingerprintIsStable) {
  const service::JobSpec job = demoJob(16);
  EXPECT_EQ(service::fingerprint(job), service::fingerprint(job));
  service::JobSpec other = job;
  other.spec.seed += 1;
  EXPECT_NE(service::fingerprint(job), service::fingerprint(other));
  // keepRecords changes the artifact's record list, so it is job identity.
  service::JobSpec bare = job;
  bare.keepRecords = false;
  EXPECT_NE(service::fingerprint(job), service::fingerprint(bare));
}

TEST(ServiceJobSpec, JsonRoundTripPreservesIdentity) {
  service::JobSpec job = demoJob(24, 7);
  job.spec.model = campaign::FaultModel::Pulse;
  job.spec.targets = campaign::TargetClass::CombinationalLut;
  job.name = "round-trip";
  service::JobSpec back;
  std::string error;
  ASSERT_TRUE(service::jobSpecFromJson(service::toJson(job), back, &error))
      << error;
  EXPECT_EQ(service::fingerprint(job), service::fingerprint(back));
}

TEST(ServiceJobSpec, ValidateRejectsNonsense) {
  service::JobSpec job = demoJob(8);
  job.tool = "hope";
  EXPECT_THROW(service::validate(job), common::FadesError);
  job = demoJob(0);
  EXPECT_THROW(service::validate(job), common::FadesError);
  job = demoJob(8);
  job.linkFaultRate = 1.5;
  EXPECT_THROW(service::validate(job), common::FadesError);
}

// ---------------------------------------------------------------------------
// Satellite: ProgressTracker heartbeat with zero completions

TEST(ServiceProgress, HeartbeatWithZeroDoneEmitsNullEta) {
  std::vector<std::string> lines;
  obs::Logger::global().setSink([&](const obs::LogRecord& record) {
    const std::string line = obs::Logger::format(record);
    if (line.find("campaign progress") != std::string::npos) {
      lines.push_back(line);
    }
  });
  {
    // A large interval keeps record() from emitting on its own; only the
    // two explicit heartbeats below produce lines.
    campaign::ProgressTracker tracker("bit-flip", 1000, 500);
    tracker.heartbeat();  // zero completions: no rate exists yet
    campaign::ExperimentOutcome outcome;
    outcome.index = 0;
    outcome.outcome = campaign::Outcome::Failure;
    outcome.modeledSeconds = 0.25;
    tracker.record(outcome);
    tracker.heartbeat();  // one completion: a real ETA can be computed
  }
  obs::Logger::global().setSink({});

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("eta_wall_s=null"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("done=0"), std::string::npos) << lines[0];
  EXPECT_EQ(lines[1].find("eta_wall_s=null"), std::string::npos) << lines[1];
}

// ---------------------------------------------------------------------------
// Satellite: journal reader tolerance and bounds

TEST(ServiceJournal, ResumeToleratesCrlfLineEndings) {
  const fs::path dir = makeTempDir("crlf");
  const fs::path path = dir / "journal.jsonl";
  campaign::CampaignSpec spec;
  spec.experiments = 4;
  spec.seed = 3;
  {
    campaign::CampaignJournal journal(path.string());
    journal.open(spec, /*resume=*/false);
    for (std::uint64_t i = 0; i < 3; ++i) {
      campaign::ExperimentOutcome outcome;
      outcome.index = i;
      outcome.outcome = campaign::Outcome::Silent;
      outcome.modeledSeconds = 0.5 + static_cast<double>(i);
      journal.append(outcome);
    }
  }
  // A journal that passed through a Windows-side transfer: CRLF endings.
  std::string text = readFile(path);
  std::string crlf;
  for (const char ch : text) {
    if (ch == '\n') crlf += "\r\n";
    else crlf += ch;
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << crlf;
  }
  campaign::CampaignJournal journal(path.string());
  journal.open(spec, /*resume=*/true);
  ASSERT_EQ(journal.completed().size(), 3u);
  EXPECT_EQ(journal.completed().at(1).modeledSeconds, 1.5);
  fs::remove_all(dir);
}

TEST(ServiceJournal, OversizeLineIsConfigErrorNamingByteOffset) {
  const fs::path dir = makeTempDir("oversize");
  const fs::path path = dir / "journal.jsonl";
  campaign::CampaignSpec spec;
  spec.experiments = 4;
  std::string headerText;
  {
    campaign::CampaignJournal journal(path.string());
    journal.open(spec, /*resume=*/false);
    headerText = readFile(path);
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << std::string(campaign::CampaignJournal::kMaxLineBytes + 16, 'x')
        << "\n";
  }
  campaign::CampaignJournal journal(path.string());
  try {
    journal.open(spec, /*resume=*/true);
    FAIL() << "oversize journal line must raise ConfigError";
  } catch (const common::FadesError& e) {
    EXPECT_EQ(e.kind(), common::ErrorKind::ConfigError);
    const std::string what = e.what();
    EXPECT_NE(what.find("byte offset " + std::to_string(headerText.size())),
              std::string::npos)
        << "expected the offending line's byte offset in: " << what;
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Coordinator protocol edge cases (raw wire, no WorkerDaemon)

struct CoordinatorFixture {
  explicit CoordinatorFixture(service::CoordinatorOptions options,
                              const std::string& tag)
      : dir(makeTempDir(tag)) {
    options.storeDir = (dir / "store").string();
    coordinator = std::make_unique<service::Coordinator>(std::move(options));
    coordinator->start();
  }
  ~CoordinatorFixture() {
    coordinator->stop();
    fs::remove_all(dir);
  }
  fs::path dir;
  std::unique_ptr<service::Coordinator> coordinator;
};

TEST(ServiceCoordinator, LeaseExpiryMidStreamRequeuesAndRevokes) {
  service::CoordinatorOptions options;
  options.blockSize = 4;
  options.leaseMs = 250;
  options.reaperTickMs = 25;
  options.progressLogMs = 0;
  CoordinatorFixture fx(options, "lease-expiry");
  const service::JobSpec job = demoJob(8, 21);
  const std::string fp = fx.coordinator->submit(job);

  const std::uint64_t expiredBefore = counterValue("service.leases_expired");
  RawClient slacker(fx.coordinator->port(), "slacker");
  Json lease = slacker.lease();
  ASSERT_EQ(typeOf(lease), "lease");
  const std::uint64_t leaseId = u64Of(lease, "lease_id");
  const std::uint64_t first = u64Of(lease, "first");
  EXPECT_EQ(stringOf(lease, "fingerprint"), fp);

  // Mid-stream silence: no heartbeat, no completion. The reaper must take
  // the lease back and requeue the block for somebody else.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (counterValue("service.leases_expired") == expiredBefore &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(counterValue("service.leases_expired"), expiredBefore);

  // The zombie's late heartbeat is answered with a revocation...
  Json hb = Json::object();
  hb.set("type", Json(std::string("heartbeat")));
  hb.set("fingerprint", Json(fp));
  hb.set("lease_id", Json(leaseId));
  hb.set("first", Json(first));
  EXPECT_EQ(typeOf(slacker.rpc(std::move(hb))), "revoked");

  // ...and an honest worker finishes the campaign, late echoes and all.
  service::WorkerOptions wopt;
  wopt.port = fx.coordinator->port();
  wopt.name = "honest";
  wopt.heartbeatMs = 50;
  service::WorkerDaemon worker(wopt);
  std::thread workerThread([&] { worker.run(); });
  EXPECT_TRUE(fx.coordinator->waitForAllComplete(60000));
  worker.stop();
  workerThread.join();
  EXPECT_TRUE(fx.coordinator->campaignComplete(fp));
  EXPECT_EQ(readFile(fx.coordinator->artifactPath(fp)),
            referenceArtifact(job));
}

TEST(ServiceCoordinator, DoubleReleaseIsIdempotent) {
  service::CoordinatorOptions options;
  options.blockSize = 4;
  options.progressLogMs = 0;
  CoordinatorFixture fx(options, "double-release");
  const service::JobSpec job = demoJob(8, 22);
  const std::string fp = fx.coordinator->submit(job);

  RawClient client(fx.coordinator->port(), "flaky");
  Json lease = client.lease();
  ASSERT_EQ(typeOf(lease), "lease");

  Json release = Json::object();
  release.set("type", Json(std::string("release")));
  release.set("fingerprint", Json(fp));
  release.set("lease_id", Json(u64Of(lease, "lease_id")));
  release.set("first", Json(u64Of(lease, "first")));
  release.set("error", Json(std::string("synthetic failure")));

  const std::uint64_t requeuedBefore =
      counterValue("service.leases_requeued");
  EXPECT_EQ(typeOf(client.rpc(Json(release))), "release_ack");
  EXPECT_EQ(counterValue("service.leases_requeued"), requeuedBefore + 1);
  // The second release of the same (now dead) lease must change nothing:
  // same ack, no double requeue of a block somebody else may hold by now.
  EXPECT_EQ(typeOf(client.rpc(Json(release))), "release_ack");
  EXPECT_EQ(counterValue("service.leases_requeued"), requeuedBefore + 1);
}

TEST(ServiceCoordinator, VanishedWorkerAfterPartialBlockDoesNotCorrupt) {
  service::CoordinatorOptions options;
  options.blockSize = 4;
  options.leaseMs = 250;
  options.reaperTickMs = 25;
  options.progressLogMs = 0;
  CoordinatorFixture fx(options, "vanish");
  const service::JobSpec job = demoJob(12, 23);
  const std::string fp = fx.coordinator->submit(job);

  // The victim completes one block honestly, leases a second one, and is
  // then SIGKILLed (wire-wise: the connection just dies, no release).
  const auto system = service::buildSystem(job);
  const auto engine = system->factory();
  const auto pool = engine->enumeratePool(job.spec);
  {
    RawClient victim(fx.coordinator->port(), "victim");
    Json lease = victim.lease();
    ASSERT_EQ(typeOf(lease), "lease");
    Json complete = Json::object();
    complete.set("type", Json(std::string("complete")));
    complete.set("fingerprint", Json(fp));
    complete.set("first", Json(u64Of(lease, "first")));
    complete.set("outcomes",
                 honestOutcomes(*engine, job.spec, pool,
                                u64Of(lease, "first"),
                                u64Of(lease, "count")));
    EXPECT_EQ(typeOf(victim.rpc(std::move(complete))), "complete_ack");
    Json second = victim.lease();
    ASSERT_EQ(typeOf(second), "lease");
    victim.vanish();  // partial block: leased, never completed
  }

  service::WorkerOptions wopt;
  wopt.port = fx.coordinator->port();
  wopt.name = "survivor";
  wopt.heartbeatMs = 50;
  service::WorkerDaemon worker(wopt);
  std::thread workerThread([&] { worker.run(); });
  EXPECT_TRUE(fx.coordinator->waitForAllComplete(60000));
  worker.stop();
  workerThread.join();
  EXPECT_EQ(readFile(fx.coordinator->artifactPath(fp)),
            referenceArtifact(job));
}

// ---------------------------------------------------------------------------
// Byzantine worker: detected, quarantined, merge unharmed

TEST(ServiceByzantine, TamperingWorkerIsBannedAndMergeStaysExact) {
  service::CoordinatorOptions options;
  options.blockSize = 4;
  options.progressLogMs = 0;
  options.auditEvery = 1;  // every block needs two agreeing workers
  options.shutdownWhenDone = true;
  CoordinatorFixture fx(options, "byzantine");
  const service::JobSpec job = demoJob(16, 24);
  const std::string fp = fx.coordinator->submit(job);

  auto makeWorker = [&](const std::string& name, bool tamper) {
    service::WorkerOptions wopt;
    wopt.port = fx.coordinator->port();
    wopt.name = name;
    wopt.heartbeatMs = 100;
    if (tamper) {
      wopt.tamper = [](campaign::ExperimentOutcome& outcome) {
        if (outcome.quarantined) return;
        outcome.outcome = outcome.outcome == campaign::Outcome::Silent
                              ? campaign::Outcome::Failure
                              : campaign::Outcome::Silent;
        if (outcome.hasRecord) outcome.record.outcome = outcome.outcome;
      };
    }
    return std::make_unique<service::WorkerDaemon>(std::move(wopt));
  };

  // Audit mode needs two honest voters for agreement; the liar makes three.
  auto liar = makeWorker("liar", true);
  auto honest1 = makeWorker("honest-1", false);
  auto honest2 = makeWorker("honest-2", false);
  std::vector<std::thread> threads;
  threads.emplace_back([&] { liar->run(); });
  threads.emplace_back([&] { honest1->run(); });
  threads.emplace_back([&] { honest2->run(); });

  EXPECT_TRUE(fx.coordinator->waitForAllComplete(120000));
  liar->stop();
  honest1->stop();
  honest2->stop();
  for (auto& t : threads) t.join();

  const auto banned = fx.coordinator->bannedWorkers();
  EXPECT_NE(std::find(banned.begin(), banned.end(), "liar"), banned.end())
      << "tampering worker must be quarantined";
  EXPECT_EQ(std::find(banned.begin(), banned.end(), "honest-1"),
            banned.end());
  EXPECT_EQ(std::find(banned.begin(), banned.end(), "honest-2"),
            banned.end());
  EXPECT_GE(obs::Registry::global()
                .gauge("service.workers_quarantined")
                .value(),
            1.0);
  // The ban event survives in the store for the next coordinator life.
  EXPECT_NE(readFile(fx.dir / "store" / "service" / "events.jsonl")
                .find("\"worker\":\"liar\""),
            std::string::npos);
  EXPECT_EQ(readFile(fx.coordinator->artifactPath(fp)),
            referenceArtifact(job));
}

// ---------------------------------------------------------------------------
// Coordinator kill + --resume: byte identity at 1 / 4 / 8 workers

class ServiceResume : public ::testing::TestWithParam<int> {};

TEST_P(ServiceResume, KilledCoordinatorResumesToIdenticalArtifact) {
  const int workerCount = GetParam();
  const fs::path dir =
      makeTempDir("resume-" + std::to_string(workerCount));
  const std::string store = (dir / "store").string();
  const service::JobSpec job = demoJob(24, 25);
  std::string fp;

  // Life 1: a worker commits exactly one block, then the coordinator dies
  // without ceremony (no graceful drain of the campaign - the journal and
  // meta files in the store are all that survives).
  {
    service::CoordinatorOptions options;
    options.storeDir = store;
    options.blockSize = 4;
    options.progressLogMs = 0;
    service::Coordinator first(options);
    first.start();
    fp = first.submit(job);

    const auto system = service::buildSystem(job);
    const auto engine = system->factory();
    const auto pool = engine->enumeratePool(job.spec);
    RawClient seedWorker(first.port(), "seed");
    Json lease = seedWorker.lease();
    ASSERT_EQ(typeOf(lease), "lease");
    Json complete = Json::object();
    complete.set("type", Json(std::string("complete")));
    complete.set("fingerprint", Json(fp));
    complete.set("first", Json(u64Of(lease, "first")));
    complete.set("outcomes",
                 honestOutcomes(*engine, job.spec, pool,
                                u64Of(lease, "first"),
                                u64Of(lease, "count")));
    ASSERT_EQ(typeOf(seedWorker.rpc(std::move(complete))), "complete_ack");
    ASSERT_FALSE(first.campaignComplete(fp));
    first.stop();
  }

  // Life 2: --resume re-reads the store, workers finish the remainder.
  service::CoordinatorOptions options;
  options.storeDir = store;
  options.blockSize = 4;
  options.progressLogMs = 0;
  options.shutdownWhenDone = true;
  service::Coordinator second(options);
  second.start();
  const auto resumed = second.resumeFromStore();
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_EQ(resumed[0], fp);

  std::vector<std::unique_ptr<service::WorkerDaemon>> workers;
  for (int i = 0; i < workerCount; ++i) {
    service::WorkerOptions wopt;
    wopt.port = second.port();
    wopt.name = "w" + std::to_string(i);
    wopt.heartbeatMs = 100;
    workers.push_back(std::make_unique<service::WorkerDaemon>(wopt));
  }
  std::vector<std::thread> threads;
  for (auto& w : workers) {
    threads.emplace_back([&w] { w->run(); });
  }
  EXPECT_TRUE(second.waitForAllComplete(120000));
  for (auto& w : workers) w->stop();
  for (auto& t : threads) t.join();

  EXPECT_EQ(readFile(second.artifactPath(fp)), referenceArtifact(job));
  second.stop();
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ServiceResume,
                         ::testing::Values(1, 4, 8));

}  // namespace
}  // namespace fades
