# CMake generated Testfile for 
# Source directory: /root/repo/src/mc8051
# Build directory: /root/repo/build/src/mc8051
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
