// Extension bench (paper Section 8, future work): permanent fault emulation
// via run-time reconfiguration - stuck-at, open-line, stuck-open and
// bridging faults on the MC8051 system. The paper announces these models as
// the framework's next step; this bench shows what the RTR machinery
// produces for them. There are no paper numbers to compare against - the
// output documents the extension's behaviour.
#include <cstdio>

#include "bench_common.hpp"
#include "core/permanent.hpp"

using namespace fades;
using namespace fades::bench;

int main(int argc, char** argv) {
  BenchRun benchRun("ext_permanent", argc, argv);
  System8051 sys;
  sys.printHeadline();
  auto& fades = sys.fades();
  core::PermanentFaults permanent(fades);
  const unsigned n = classifyCount(150);

  std::vector<std::vector<std::string>> rows;
  for (const auto model :
       {core::PermanentFaultModel::StuckAt0,
        core::PermanentFaultModel::StuckAt1,
        core::PermanentFaultModel::OpenLine,
        core::PermanentFaultModel::StuckOpen,
        core::PermanentFaultModel::Bridging}) {
    core::PermanentCampaignSpec spec;
    spec.model = model;
    spec.experiments = n;
    spec.seed = 8;
    const auto pool = permanent.targets(model, netlist::Unit::None);
    const auto r = permanent.runCampaign(spec);
    rows.push_back({core::toString(model), std::to_string(pool.size()),
                    pct3(r), common::fixed(r.modeledSeconds.mean(), 3)});
  }
  printTable("Extension - permanent faults via RTR (" + std::to_string(n) +
                 " faults per model; future work of the paper's Section 8)",
             {"fault model", "targets", "failure / latent / silent %",
              "mean s/fault (modeled)"},
             rows);
  return 0;
}
