#include "fpga/bitstream_io.hpp"

#include <array>
#include <cstdio>
#include <memory>

#include "common/error.hpp"

namespace fades::fpga {

using common::ErrorKind;
using common::raise;
using common::require;

namespace {

constexpr std::uint32_t kMagic = 0xFADE5B17;
constexpr std::uint32_t kVersion = 1;

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

struct Reader {
  const std::vector<std::uint8_t>& b;
  std::size_t pos = 0;

  // Subtraction-based bounds checks (pos is always <= b.size(), so
  // b.size() - pos cannot wrap), and every failure names the byte offset
  // so a corrupt file can be diagnosed from the message alone.
  std::size_t remaining() const { return b.size() - pos; }
  void need(std::size_t n, const char* what) {
    if (remaining() < n) {
      raise(ErrorKind::ConfigError,
            std::string("truncated bitstream container: need ") +
                std::to_string(n) + " byte(s) for " + what +
                " at byte offset " + std::to_string(pos) + ", have " +
                std::to_string(remaining()));
    }
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[pos++]} << (8 * i);
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[pos++]} << (8 * i);
    return v;
  }
};

const std::array<std::uint32_t, 256>& crcTable() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = crcTable()[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> serializeBitstream(const DeviceSpec& spec,
                                             const Bitstream& bs) {
  std::vector<std::uint8_t> out;
  putU32(out, kMagic);
  putU32(out, kVersion);
  putU32(out, spec.rows);
  putU32(out, spec.cols);
  putU32(out, spec.tracks);
  putU32(out, spec.memBlocks);
  putU32(out, spec.memBlockBits);
  putU64(out, bs.logic.size());
  putU64(out, bs.bram.size());
  const auto logicBytes = bs.logic.exportBytes(0, bs.logic.size());
  const auto bramBytes = bs.bram.exportBytes(0, bs.bram.size());
  const std::size_t payloadStart = out.size();
  out.insert(out.end(), logicBytes.begin(), logicBytes.end());
  out.insert(out.end(), bramBytes.begin(), bramBytes.end());
  putU32(out, crc32(out.data() + payloadStart, out.size() - payloadStart));
  return out;
}

Bitstream deserializeBitstream(const DeviceSpec& expected,
                               std::vector<std::uint8_t> const& bytes) {
  Reader r{bytes};
  require(r.u32("magic") == kMagic, ErrorKind::ConfigError,
          "bad bitstream magic at byte offset 0");
  require(r.u32("version") == kVersion, ErrorKind::ConfigError,
          "unsupported bitstream version at byte offset 4");
  const auto rows = r.u32("rows"), cols = r.u32("cols"),
             tracks = r.u32("tracks");
  const auto memBlocks = r.u32("memBlocks"),
             memBlockBits = r.u32("memBlockBits");
  require(rows == expected.rows && cols == expected.cols &&
              tracks == expected.tracks && memBlocks == expected.memBlocks &&
              memBlockBits == expected.memBlockBits,
          ErrorKind::ConfigError,
          "bitstream was generated for a different device geometry");
  const auto logicBits = r.u64("logic bit count");
  const auto bramBits = r.u64("bram bit count");
  // Validate the declared sizes against what the container actually holds
  // BEFORE allocating anything: the counts are attacker-controlled 64-bit
  // values, so both the +7 rounding and any pos+len addition could wrap.
  // Everything below is subtraction-based on the known remaining length.
  const std::size_t payloadStart = r.pos;
  require(r.remaining() >= 4, ErrorKind::ConfigError,
          "truncated bitstream: no room for CRC after byte offset " +
              std::to_string(r.pos));
  const std::size_t payloadMax = r.remaining() - 4;
  require(logicBits <= std::uint64_t{payloadMax} * 8, ErrorKind::ConfigError,
          "declared logic bit count " + std::to_string(logicBits) +
              " exceeds the " + std::to_string(payloadMax) +
              " payload byte(s) present at byte offset " +
              std::to_string(payloadStart));
  const std::size_t logicBytes = static_cast<std::size_t>((logicBits + 7) / 8);
  require(bramBits <= (std::uint64_t{payloadMax} - logicBytes) * 8,
          ErrorKind::ConfigError,
          "declared bram bit count " + std::to_string(bramBits) +
              " exceeds the payload byte(s) remaining at byte offset " +
              std::to_string(payloadStart + logicBytes));
  const std::size_t bramBytes = static_cast<std::size_t>((bramBits + 7) / 8);
  // Verify the CRC before constructing the Bitstream: a corrupt file must
  // raise a typed error without any partially imported state escaping.
  const std::uint32_t computed =
      crc32(bytes.data() + payloadStart, logicBytes + bramBytes);
  const std::size_t crcPos = payloadStart + logicBytes + bramBytes;
  Reader crcReader{bytes, crcPos};
  const std::uint32_t stored = crcReader.u32("payload CRC");
  require(stored == computed, ErrorKind::ConfigError,
          "bitstream CRC mismatch at byte offset " + std::to_string(crcPos) +
              " (corrupted configuration file)");
  require(crcReader.remaining() == 0, ErrorKind::ConfigError,
          std::to_string(crcReader.remaining()) +
              " trailing byte(s) after bitstream CRC at byte offset " +
              std::to_string(crcReader.pos));
  Bitstream bs{common::BitVector(logicBits), common::BitVector(bramBits)};
  bs.logic.importBytes(0, logicBits, {bytes.data() + payloadStart, logicBytes});
  bs.bram.importBytes(0, bramBits,
                      {bytes.data() + payloadStart + logicBytes, bramBytes});
  return bs;
}

void saveBitstream(const std::string& path, const DeviceSpec& spec,
                   const Bitstream& bitstream) {
  const auto bytes = serializeBitstream(spec, bitstream);
  // Crash-safe tmp + rename: a configuration file on disk is always either
  // the previous complete image or the new complete image.
  const std::string tmp = path + ".tmp";
  {
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
        std::fopen(tmp.c_str(), "wb"), &std::fclose);
    require(f != nullptr, ErrorKind::ConfigError,
            "cannot open '" + tmp + "' for writing");
    const bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f.get()) == bytes.size() &&
        std::fflush(f.get()) == 0;
    if (!ok) {
      f.reset();
      std::remove(tmp.c_str());
      raise(ErrorKind::ConfigError, "short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    raise(ErrorKind::ConfigError,
          "cannot rename '" + tmp + "' to '" + path + "'");
  }
}

Bitstream loadBitstream(const std::string& path, const DeviceSpec& expected) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  require(f != nullptr, ErrorKind::ConfigError,
          "cannot open '" + path + "'");
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  require(size > 0, ErrorKind::ConfigError, "empty bitstream file");
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  require(std::fread(bytes.data(), 1, bytes.size(), f.get()) == bytes.size(),
          ErrorKind::ConfigError, "short read from '" + path + "'");
  return deserializeBitstream(expected, bytes);
}

}  // namespace fades::fpga
