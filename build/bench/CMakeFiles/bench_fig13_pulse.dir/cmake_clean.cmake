file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_pulse.dir/bench_fig13_pulse.cpp.o"
  "CMakeFiles/bench_fig13_pulse.dir/bench_fig13_pulse.cpp.o.d"
  "bench_fig13_pulse"
  "bench_fig13_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
