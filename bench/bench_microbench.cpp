// Google-benchmark microbenchmarks of the substrate itself: how fast the
// host machine emulates the configured FPGA, simulates the netlist, and
// performs reconfiguration operations. These are the wall-clock numbers a
// user needs to size real campaigns (the modeled 2006 times come from the
// board-link cost model instead).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bits/config_port.hpp"
#include "fpga/device.hpp"
#include "mc8051/core.hpp"
#include "mc8051/iss.hpp"
#include "mc8051/workloads.hpp"
#include "sim/simulator.hpp"
#include "synth/implement.hpp"

namespace {

using namespace fades;

struct Shared {
  mc8051::Workload workload = mc8051::bubblesort(6);
  netlist::Netlist nl = mc8051::buildCore(workload.bytes);
  synth::Implementation impl =
      synth::implement(nl, fpga::DeviceSpec::virtex1000Like());

  static const Shared& get() {
    static Shared s;
    return s;
  }
};

void BM_IssCycle(benchmark::State& state) {
  mc8051::Iss iss(Shared::get().workload.bytes);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    cycles += iss.stepInstruction();
    if (iss.cycleCount() > Shared::get().workload.cycles) iss.reset();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_IssCycle);

void BM_NetlistSimulatorCycle(benchmark::State& state) {
  sim::Simulator simulator(Shared::get().nl);
  for (auto _ : state) simulator.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetlistSimulatorCycle);

void BM_FpgaEmulationCycle(benchmark::State& state) {
  const auto& s = Shared::get();
  fpga::Device dev(s.impl.spec);
  dev.writeFullBitstream(s.impl.bitstream);
  for (auto _ : state) dev.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FpgaEmulationCycle);

void BM_LutTableRewrite(benchmark::State& state) {
  const auto& s = Shared::get();
  fpga::Device dev(s.impl.spec);
  dev.writeFullBitstream(s.impl.bitstream);
  bits::ConfigPort port(dev);
  const auto cb = s.impl.luts[0].cb;
  const auto original = s.impl.luts[0].table;
  for (auto _ : state) {
    port.setLutTable(cb, static_cast<std::uint16_t>(~original));
    dev.settle();
    port.setLutTable(cb, original);
    dev.settle();
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_LutTableRewrite);

void BM_CaptureFrameReadback(benchmark::State& state) {
  const auto& s = Shared::get();
  fpga::Device dev(s.impl.spec);
  dev.writeFullBitstream(s.impl.bitstream);
  bits::ConfigPort port(dev);
  unsigned col = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(port.readCaptureFrame(col));
    col = (col + 1) % s.impl.spec.cols;
  }
}
BENCHMARK(BM_CaptureFrameReadback);

void BM_DeviceStateRestore(benchmark::State& state) {
  const auto& s = Shared::get();
  fpga::Device dev(s.impl.spec);
  dev.writeFullBitstream(s.impl.bitstream);
  const auto snapshot = dev.captureState();
  for (auto _ : state) dev.restoreState(snapshot);
}
BENCHMARK(BM_DeviceStateRestore);

void BM_Synthesize8051(benchmark::State& state) {
  const auto& s = Shared::get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth::implement(s.nl, fpga::DeviceSpec::virtex1000Like()));
  }
}
BENCHMARK(BM_Synthesize8051)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

// Same `--json [path]` flag as the table benches, translated onto google
// benchmark's native JSON reporter so the artifact carries real timings.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string outFlag, fmtFlag = "--benchmark_out_format=json";
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::string(argv[i]) == "--json") {
      std::string path = "BENCH_microbench.json";
      if (i + 1 < argc && argv[i + 1][0] != '-') path = argv[++i];
      outFlag = "--benchmark_out=" + path;
      args.push_back(outFlag.data());
      args.push_back(fmtFlag.data());
    } else {
      args.push_back(argv[i]);
    }
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
