// Gate-level MC8051 core.
//
// A multi-cycle implementation of the MC8051 subset, written against the RTL
// construction kit and producing a plain netlist - the "HDL model" of the
// paper's experiments. Functional units are tagged for fault location
// exactly like the paper's campaign targets (Section 6.1):
//
//   Registers - architectural registers (ACC, B, PSW, SP, DPTR, ports)
//   Ram       - the 128-byte internal RAM (maps to an FPGA memory block)
//   Alu       - arithmetic/logic unit and flag generation
//   MemCtrl   - PC, address muxes, memory-control latches
//   Fsm       - control state machine and instruction decoder
//
// Ports:
//   p0, p1 (outputs)   - SFR-mapped output ports (the observation points)
//   pc    (output)     - program counter (state observability for traces)
//   sp, acc (outputs)  - additional observation points
//
// The ROM is initialized with the workload program; execution starts at
// address 0 out of reset (flip-flop init values = power-on state).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace fades::mc8051 {

struct CoreConfig {
  unsigned romAddrBits = 9;  // 512-byte program store
};

/// Build the core netlist with the given program in ROM.
netlist::Netlist buildCore(const std::vector<std::uint8_t>& program,
                           const CoreConfig& config = {});

}  // namespace fades::mc8051
