# Empty dependencies file for bench_ablation_lsr_gsr.
# This may be replaced when dependencies are built.
