#include "synth/route.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.hpp"
#include "synth/fabric.hpp"

namespace fades::synth {

using common::ErrorKind;
using common::raise;
using common::require;
using fpga::NodeKind;

namespace {

struct Search {
  // Epoch-tagged arrays avoid O(N) clears between A* runs.
  std::vector<float> g;
  std::vector<std::uint32_t> prev;
  std::vector<std::uint32_t> epochTag;
  std::uint32_t epoch = 0;

  explicit Search(std::size_t n)
      : g(n, 0.f), prev(n, 0), epochTag(n, 0) {}

  void newSearch() { ++epoch; }
  bool seen(std::uint32_t n) const { return epochTag[n] == epoch; }
  void visit(std::uint32_t n, float cost, std::uint32_t from) {
    epochTag[n] = epoch;
    g[n] = cost;
    prev[n] = from;
  }
};

bool isPin(NodeKind k) {
  return k == NodeKind::CbIn || k == NodeKind::CbOut || k == NodeKind::Pad ||
         k == NodeKind::BramPin;
}

}  // namespace

std::vector<RoutedNet> routeAll(const fpga::ConfigLayout& layout,
                                const fpga::RoutingNodes& nodes,
                                const std::vector<RouteRequest>& requests,
                                unsigned maxIterations, RouteStats* stats) {
  const std::uint32_t N = nodes.count();
  std::vector<RoutedNet> result(requests.size());
  std::vector<std::uint16_t> occupancy(N, 0);
  std::vector<float> history(N, 0.f);
  std::vector<std::uint8_t> kindOf(N);
  std::vector<float> posX(N), posY(N);
  for (std::uint32_t n = 0; n < N; ++n) {
    kindOf[n] = static_cast<std::uint8_t>(nodes.info(n).kind);
    double x, y;
    nodes.position(n, x, y);
    posX[n] = static_cast<float>(x);
    posY[n] = static_cast<float>(y);
  }

  Search search(N);
  using QEntry = std::pair<float, std::uint32_t>;  // (f = g + h, node)
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> open;

  auto ripUp = [&](std::size_t netIdx) {
    for (auto n : result[netIdx].nodes) {
      if (occupancy[n] > 0) --occupancy[n];
    }
    result[netIdx] = RoutedNet{};
  };

  auto routeNet = [&](std::size_t netIdx, float presentFactor) {
    const RouteRequest& req = requests[netIdx];
    RoutedNet net;
    net.nodes.push_back(req.source);

    // Route sinks nearest-first for better Steiner trees.
    std::vector<std::uint32_t> sinks = req.sinks;
    std::sort(sinks.begin(), sinks.end(), [&](std::uint32_t a,
                                              std::uint32_t b) {
      const float da = std::abs(posX[a] - posX[req.source]) +
                       std::abs(posY[a] - posY[req.source]);
      const float db = std::abs(posX[b] - posX[req.source]) +
                       std::abs(posY[b] - posY[req.source]);
      return da < db;
    });

    for (std::uint32_t sink : sinks) {
      if (sink == req.source) continue;
      search.newSearch();
      while (!open.empty()) open.pop();
      for (auto n : net.nodes) {
        search.visit(n, 0.f, n);
        const float h = std::abs(posX[n] - posX[sink]) +
                        std::abs(posY[n] - posY[sink]);
        open.push({h, n});
      }
      bool found = false;
      while (!open.empty()) {
        const auto [f, n] = open.top();
        open.pop();
        if (n == sink) {
          found = true;
          break;
        }
        const float gn = search.g[n];
        // Stale queue entry?
        {
          const float h = std::abs(posX[n] - posX[sink]) +
                          std::abs(posY[n] - posY[sink]);
          if (f > gn + h + 1e-3f) continue;
        }
        forEachNeighbor(layout, nodes, n,
                        [&](std::uint32_t nb, std::size_t /*bit*/) {
          // Pins are endpoints, never waypoints.
          if (isPin(static_cast<NodeKind>(kindOf[nb])) && nb != sink) return;
          const float nodeCost =
              1.f + history[nb] +
              presentFactor * static_cast<float>(occupancy[nb]);
          const float cost = gn + nodeCost;
          if (!search.seen(nb) || cost < search.g[nb] - 1e-6f) {
            search.visit(nb, cost, n);
            const float h = std::abs(posX[nb] - posX[sink]) +
                            std::abs(posY[nb] - posY[sink]);
            open.push({cost + h, nb});
          }
        });
      }
      if (!found) {
        raise(ErrorKind::RoutingError,
              "no path to sink (net " + std::to_string(netIdx) + ")");
      }
      // Walk back and add the path to the tree.
      std::uint32_t n = sink;
      while (search.prev[n] != n) {
        const std::uint32_t p = search.prev[n];
        net.edges.emplace_back(p, n);
        net.nodes.push_back(n);
        n = p;
      }
    }
    for (auto n : net.nodes) ++occupancy[n];
    result[netIdx] = std::move(net);
  };

  // Iteration 1: route everything; afterwards rip up and reroute only nets
  // crossing overused nodes, with increasing congestion pressure.
  for (unsigned iter = 1; iter <= maxIterations; ++iter) {
    const float presentFactor = iter == 1 ? 0.5f : 1.5f * iter;
    if (iter == 1) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        routeNet(i, presentFactor);
      }
    } else {
      // Find congested nets.
      std::vector<std::size_t> congested;
      for (std::size_t i = 0; i < requests.size(); ++i) {
        bool over = false;
        for (auto n : result[i].nodes) {
          if (occupancy[n] > 1 &&
              !isPin(static_cast<NodeKind>(kindOf[n]))) {
            over = true;
            break;
          }
        }
        if (over) congested.push_back(i);
      }
      if (congested.empty()) break;
      for (auto i : congested) ripUp(i);
      for (auto i : congested) routeNet(i, presentFactor);
    }
    // Update history for overused nodes; pressure grows with iterations so
    // a thrashing pair of nets eventually diverges onto distinct tracks.
    bool anyOver = false;
    const float historyInc = 1.0f + 0.2f * static_cast<float>(iter);
    for (std::uint32_t n = 0; n < N; ++n) {
      if (occupancy[n] > 1 && !isPin(static_cast<NodeKind>(kindOf[n]))) {
        history[n] += historyInc;
        anyOver = true;
      }
    }
    if (stats) stats->iterations = iter;
    if (!anyOver) break;
    if (iter >= maxIterations) {
      // Build a diagnostic of where congestion persists.
      std::size_t overCount = 0;
      std::string samples;
      for (std::uint32_t n = 0; n < N && overCount < 2000; ++n) {
        if (occupancy[n] > 1 && !isPin(static_cast<NodeKind>(kindOf[n]))) {
          ++overCount;
          if (overCount <= 8) {
            const auto info = nodes.info(n);
            samples += (info.kind == NodeKind::HSeg ? " H(" : " V(") +
                       std::to_string(info.x) + "," + std::to_string(info.y) +
                       ",t" + std::to_string(info.track) + ")x" +
                       std::to_string(occupancy[n]);
          }
        }
      }
      raise(ErrorKind::RoutingError,
            "congestion not resolved after " + std::to_string(iter) +
                " iterations; " + std::to_string(overCount) +
                " overused nodes:" + samples);
    }
  }

  if (stats) {
    stats->totalWireNodes = 0;
    for (const auto& net : result) stats->totalWireNodes += net.nodes.size();
  }
  return result;
}

}  // namespace fades::synth
