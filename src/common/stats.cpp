#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fades::common {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percent(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

std::string fixed(double value, int decimals) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  if (n < 0) return {};
  if (static_cast<std::size_t>(n) < sizeof buf) return buf;
  // Wide values (e.g. 1e300 at 3 decimals) need more than the stack buffer;
  // format again into a correctly sized string instead of truncating.
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, "%.*f", decimals, value);
  return out;
}

std::string renderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  // Size to the widest row, not just the header: rows may carry more
  // columns than the header names, and those cells must not be dropped.
  std::size_t columns = header.size();
  for (const auto& row : rows) columns = std::max(columns, row.size());
  std::vector<std::size_t> widths(columns, 0);
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(widths[c], ' ');
      line += " " + cell + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (auto w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + renderRow(header) + sep;
  for (const auto& row : rows) out += renderRow(row);
  out += sep;
  return out;
}

}  // namespace fades::common
