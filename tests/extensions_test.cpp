// Tests for the framework extensions: saboteur instrumentation (CTR
// baseline), bitstream serialization, VCD tracing, and multiple bit-flips.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "core/fades.hpp"
#include "fpga/bitstream_io.hpp"
#include "rtl/builder.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"
#include "synth/implement.hpp"
#include "synth/instrument.hpp"

namespace fades {
namespace {

using common::FadesError;
using common::Rng;
using netlist::Netlist;
using netlist::Unit;
using rtl::Builder;
using rtl::Bus;
using sim::Simulator;

// ----------------------------------------------------- instrumentation -----

Netlist smallAluModel() {
  Builder b;
  Bus a = b.input("a", 4);
  Bus c = b.input("c", 4);
  auto sum = b.add(a, c, {});
  b.nameBus("sum_net", sum.sum);
  b.output("sum", sum.sum);
  b.output("cout", sum.carryOut);
  return b.finish();
}

TEST(Instrument, DisabledSaboteursAreTransparent) {
  Netlist model = smallAluModel();
  const auto targets = std::vector<netlist::NetId>{
      *model.findNet("sum_net[0]"), *model.findNet("sum_net[2]")};
  const auto inst = synth::instrumentWithSaboteurs(model, targets);

  Simulator ref(model), sab(inst.netlist);
  sab.setInput("sab_enable", 0);
  sab.setInput("sab_select", 0);
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned c = 0; c < 16; ++c) {
      ref.setInput("a", a);
      ref.setInput("c", c);
      sab.setInput("a", a);
      sab.setInput("c", c);
      ref.settle();
      sab.settle();
      ASSERT_EQ(ref.portValue("sum"), sab.portValue("sum")) << a << "," << c;
      ASSERT_EQ(ref.portValue("cout"), sab.portValue("cout"));
    }
  }
}

TEST(Instrument, EnabledSaboteurInvertsExactlyTheSelectedNet) {
  Netlist model = smallAluModel();
  const auto targets = std::vector<netlist::NetId>{
      *model.findNet("sum_net[0]"), *model.findNet("sum_net[2]")};
  const auto inst = synth::instrumentWithSaboteurs(model, targets);

  Simulator ref(model), sab(inst.netlist);
  for (const auto& [net, selector] : inst.selectors) {
    const unsigned bit = (net == targets[0]) ? 0u : 2u;
    sab.setInput("sab_enable", 1);
    sab.setInput("sab_select", selector);
    for (unsigned a = 0; a < 16; a += 3) {
      for (unsigned c = 0; c < 16; c += 5) {
        ref.setInput("a", a);
        ref.setInput("c", c);
        sab.setInput("a", a);
        sab.setInput("c", c);
        ref.settle();
        sab.settle();
        ASSERT_EQ(sab.portValue("sum"),
                  ref.portValue("sum") ^ (1u << bit))
            << "selector " << selector;
      }
    }
  }
}

TEST(Instrument, CountsOverheadAndRejectsBadTargets) {
  Netlist model = smallAluModel();
  const auto inst = synth::instrumentWithSaboteurs(
      model, {*model.findNet("sum_net[1]")});
  // Degenerate single-target case: `sab_enable` alone drives the lone
  // saboteur - no select port, no match tree, exactly one XOR of overhead.
  EXPECT_EQ(inst.selectBits, 0u);
  EXPECT_EQ(inst.saboteurGates, 1u);
  EXPECT_EQ(inst.netlist.findInput("sab_select"), nullptr);

  Netlist model2 = smallAluModel();
  // Input-port nets cannot host a saboteur.
  EXPECT_THROW(synth::instrumentWithSaboteurs(
                   model2, {model2.inputs()[0].nets[0]}),
               FadesError);
}

TEST(Instrument, SingleTargetSaboteurDrivenByEnableAlone) {
  Netlist model = smallAluModel();
  const auto inst = synth::instrumentWithSaboteurs(
      model, {*model.findNet("sum_net[1]")});

  Simulator ref(model), sab(inst.netlist);
  sab.setInput("sab_enable", 1);
  for (unsigned a = 0; a < 16; a += 3) {
    for (unsigned c = 0; c < 16; c += 5) {
      ref.setInput("a", a);
      ref.setInput("c", c);
      sab.setInput("a", a);
      sab.setInput("c", c);
      ref.settle();
      sab.settle();
      ASSERT_EQ(sab.portValue("sum"), ref.portValue("sum") ^ 2u)
          << a << "," << c;
    }
  }
}

TEST(Instrument, RejectsDuplicateTargetNets) {
  // A duplicate target would chain two saboteurs onto one site, so one
  // selector value no longer maps to one injection site.
  Netlist model = smallAluModel();
  const auto dup = *model.findNet("sum_net[0]");
  try {
    synth::instrumentWithSaboteurs(model,
                                   {dup, *model.findNet("sum_net[2]"), dup});
    FAIL() << "duplicate saboteur target accepted";
  } catch (const FadesError& e) {
    EXPECT_EQ(e.kind(), common::ErrorKind::ConfigError);
    EXPECT_NE(std::string(e.what()).find("sum_net[0]"), std::string::npos)
        << e.what();
  }
}

TEST(Instrument, InstrumentedModelStillSynthesizes) {
  Netlist model = smallAluModel();
  const auto inst = synth::instrumentWithSaboteurs(
      model, {*model.findNet("sum_net[0]"), *model.findNet("sum_net[3]")});
  const auto impl =
      synth::implement(inst.netlist, fpga::DeviceSpec::small());
  EXPECT_GT(impl.stats.luts, 0u);
}

// ------------------------------------------- autonomous instrumentation -----

Netlist smallCounterModel() {
  Builder b;
  auto count = b.makeRegister("count", 4, 0);
  b.connect(count, b.increment(count.q));
  b.output("count", count.q);
  return b.finish();
}

TEST(Instrument, AutonomousControlsAtZeroAreTransparent) {
  Netlist model = smallCounterModel();
  const auto am = synth::instrumentAutonomous(model);
  EXPECT_EQ(am.chainBits, 4u);

  Simulator ref(model), inst(am.netlist);
  ref.reset();
  inst.reset();
  for (unsigned c = 0; c < 40; ++c) {
    ASSERT_EQ(ref.portValue("count"), inst.portValue("count")) << c;
    ref.step();
    inst.step();
  }
}

TEST(Instrument, AutonomousInjectFlipsExactlyTheMaskedFlop) {
  Netlist model = smallCounterModel();
  const auto am = synth::instrumentAutonomous(model);
  const unsigned p = 2;  // arm chain position 2

  Simulator ref(model), inst(am.netlist);
  ref.reset();
  inst.reset();
  // Scan the one-hot mask in; the design keeps running meanwhile and must
  // stay in lockstep with the reference (mask loading is non-intrusive).
  for (unsigned s = 0; s < am.chainBits; ++s) {
    inst.setInput("am_scan_in", s == am.chainBits - 1 - p ? 1 : 0);
    inst.setInput("am_shift", 1);
    inst.step();
    ref.step();
  }
  inst.setInput("am_shift", 0);
  inst.setInput("am_scan_in", 0);
  for (std::uint32_t f = 0; f < model.flopCount(); ++f) {
    ASSERT_EQ(inst.flopState(netlist::FlopId{f}),
              ref.flopState(netlist::FlopId{f}))
        << "lockstep broken during mask load, flop " << f;
  }

  // One cycle of am_inject XORs exactly the armed flip-flop's next state.
  inst.setInput("am_inject", 1);
  inst.step();
  ref.step();
  inst.setInput("am_inject", 0);
  for (std::uint32_t f = 0; f < model.flopCount(); ++f) {
    const bool want = f == am.chain[p].value
                          ? !ref.flopState(netlist::FlopId{f})
                          : ref.flopState(netlist::FlopId{f});
    EXPECT_EQ(inst.flopState(netlist::FlopId{f}), want) << "flop " << f;
  }
}

TEST(Instrument, AutonomousCaptureAndRestoreReturnToGolden) {
  Netlist model = smallCounterModel();
  const auto am = synth::instrumentAutonomous(model);

  Simulator ref(model), inst(am.netlist);
  ref.reset();
  inst.reset();
  // Mirror the golden run into the shadows, then freeze them at cycle 7.
  inst.setInput("am_capture", 1);
  for (unsigned c = 0; c < 7; ++c) {
    inst.step();
    ref.step();
  }
  inst.setInput("am_capture", 0);
  const auto goldenCount = ref.portValue("count");

  // Let the main design run ahead; the frozen shadows keep the golden state.
  for (unsigned c = 0; c < 3; ++c) inst.step();
  EXPECT_NE(inst.portValue("count"), goldenCount);

  // A single restore cycle copies the shadows back into every main flop.
  inst.setInput("am_restore", 1);
  inst.step();
  inst.setInput("am_restore", 0);
  EXPECT_EQ(inst.portValue("count"), goldenCount);
  for (std::uint32_t f = 0; f < model.flopCount(); ++f) {
    EXPECT_EQ(inst.flopState(netlist::FlopId{f}),
              ref.flopState(netlist::FlopId{f}))
        << "flop " << f;
  }
}

TEST(Instrument, AutonomousCountsExactOverhead) {
  Netlist model = smallCounterModel();
  const auto am = synth::instrumentAutonomous(model);
  const std::size_t flops = model.flopCount();
  // Per masked flop: scan mux + arm AND + inject XOR + restore mux + shadow
  // mux = 5 gates; mask + shadow = 2 flip-flops. No memory, no shadow bits.
  EXPECT_EQ(am.addedGates, 5 * flops);
  EXPECT_EQ(am.addedFlops, 2 * flops);
  EXPECT_EQ(am.shadowRamBits, 0u);
  EXPECT_EQ(am.chain.size(), flops);
}

TEST(Instrument, AutonomousRejectsDuplicateAndBadMaskTargets) {
  Netlist model = smallCounterModel();
  try {
    synth::instrumentAutonomous(
        model, {netlist::FlopId{0}, netlist::FlopId{1}, netlist::FlopId{0}});
    FAIL() << "duplicate mask target accepted";
  } catch (const FadesError& e) {
    EXPECT_EQ(e.kind(), common::ErrorKind::ConfigError);
    EXPECT_NE(std::string(e.what()).find("count[0]"), std::string::npos)
        << e.what();
  }
  Netlist model2 = smallCounterModel();
  EXPECT_THROW(synth::instrumentAutonomous(model2, {netlist::FlopId{99}}),
               FadesError);
}

// --------------------------------------------------------- bitstream io -----

TEST(BitstreamIo, RoundTripPreservesEverything) {
  Builder b;
  rtl::Register r = b.makeRegister("r", 4, 5);
  b.connect(r, b.increment(r.q));
  b.output("r", r.q);
  const auto impl = synth::implement(b.finish(), fpga::DeviceSpec::small());

  const auto bytes =
      fpga::serializeBitstream(fpga::DeviceSpec::small(), impl.bitstream);
  const auto back =
      fpga::deserializeBitstream(fpga::DeviceSpec::small(), bytes);
  EXPECT_EQ(back.logic, impl.bitstream.logic);
  EXPECT_EQ(back.bram, impl.bitstream.bram);
}

TEST(BitstreamIo, DetectsCorruption) {
  Builder b;
  b.output("y", b.lnot(b.inputBit("a")));
  const auto impl = synth::implement(b.finish(), fpga::DeviceSpec::small());
  auto bytes =
      fpga::serializeBitstream(fpga::DeviceSpec::small(), impl.bitstream);
  bytes[bytes.size() / 2] ^= 0x10;  // flip a payload bit
  EXPECT_THROW(fpga::deserializeBitstream(fpga::DeviceSpec::small(), bytes),
               FadesError);
}

TEST(BitstreamIo, RejectsWrongGeometryAndBadMagic) {
  Builder b;
  b.output("y", b.lnot(b.inputBit("a")));
  const auto impl = synth::implement(b.finish(), fpga::DeviceSpec::small());
  auto bytes =
      fpga::serializeBitstream(fpga::DeviceSpec::small(), impl.bitstream);
  EXPECT_THROW(fpga::deserializeBitstream(fpga::DeviceSpec::medium(), bytes),
               FadesError);
  bytes[0] ^= 0xFF;
  EXPECT_THROW(fpga::deserializeBitstream(fpga::DeviceSpec::small(), bytes),
               FadesError);
}

TEST(BitstreamIo, FileRoundTrip) {
  Builder b;
  b.output("y", b.lnot(b.inputBit("a")));
  const auto impl = synth::implement(b.finish(), fpga::DeviceSpec::small());
  const std::string path = ::testing::TempDir() + "/fades_test.bit";
  fpga::saveBitstream(path, fpga::DeviceSpec::small(), impl.bitstream);
  const auto back = fpga::loadBitstream(path, fpga::DeviceSpec::small());
  EXPECT_EQ(back.logic, impl.bitstream.logic);
  std::remove(path.c_str());

  // A loaded configuration file actually configures a device.
  fpga::Device dev(fpga::DeviceSpec::small());
  dev.writeFullBitstream(back);
  EXPECT_EQ(dev.usedLutCount(), impl.stats.luts);
}

TEST(BitstreamIo, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE 802.3 check value).
  const char* s = "123456789";
  EXPECT_EQ(fpga::crc32(reinterpret_cast<const std::uint8_t*>(s), 9),
            0xCBF43926u);
}

// ----------------------------------------------------------------- VCD -----

TEST(Vcd, EmitsHeaderAndOnlyChanges) {
  Builder b;
  rtl::Register c = b.makeRegister("c", 2, 0);
  b.connect(c, b.increment(c.q));
  b.output("c", c.q);
  b.output("msb", c.q[1]);
  Netlist nl = b.finish();
  Simulator s(nl);
  sim::VcdWriter vcd(s, nl);
  vcd.addAllOutputs();
  for (std::uint64_t cy = 0; cy < 6; ++cy) {
    vcd.sample(cy);
    s.step();
  }
  const std::string text = vcd.str();
  EXPECT_NE(text.find("$timescale 40 ns $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 2"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1"), std::string::npos);
  EXPECT_NE(text.find("#0"), std::string::npos);
  // msb (bit 1) changes at cycle 2: timestamps present for changes only.
  EXPECT_NE(text.find("#2"), std::string::npos);
  EXPECT_EQ(text.find("#1\n1"), std::string::npos);  // msb did not change at 1
  // Counter bus emitted MSB-first.
  EXPECT_NE(text.find("b01 "), std::string::npos);
  EXPECT_NE(text.find("b10 "), std::string::npos);
}

TEST(Vcd, SaveWritesFile) {
  Builder b;
  b.output("y", b.lnot(b.inputBit("a")));
  Netlist nl = b.finish();
  Simulator s(nl);
  sim::VcdWriter vcd(s, nl);
  vcd.addAllOutputs();
  vcd.sample(0);
  const std::string path = ::testing::TempDir() + "/fades_test.vcd";
  vcd.save(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

// ------------------------------------------------- multiple bit-flips -----

TEST(Mbu, HigherMultiplicityNeverReducesCorruption) {
  // On an LFSR whose bits all feed the output, flipping more bits at once
  // keeps (or raises) the failure probability; a multiplicity-0-like check
  // is the single-flip experiment.
  Builder b;
  b.setUnit(Unit::Registers);
  rtl::Register lfsr = b.makeRegister("lfsr", 8, 1);
  auto fb = b.lxor(lfsr.q[7], b.lxor(lfsr.q[5], b.lxor(lfsr.q[4], lfsr.q[3])));
  rtl::Bus next{fb};
  for (int i = 0; i < 7; ++i) next.push_back(lfsr.q[i]);
  b.connect(lfsr, next);
  b.output("out", lfsr.q);
  const auto impl = synth::implement(b.finish(), fpga::DeviceSpec::small());
  fpga::Device dev(impl.spec);
  core::FadesOptions opt;
  opt.observedOutputs = {"out"};
  core::FadesTool tool(dev, impl, 48, opt);

  Rng rng(3);
  std::vector<std::uint32_t> one{0};
  std::vector<std::uint32_t> many{0, 2, 4, 6};
  const auto o1 = tool.runMultipleBitFlipExperiment(one, 10);
  const auto o4 = tool.runMultipleBitFlipExperiment(many, 10);
  // The LFSR state feeds the output directly: both corrupt it immediately.
  EXPECT_EQ(o1, campaign::Outcome::Failure);
  EXPECT_EQ(o4, campaign::Outcome::Failure);
  // Configuration untouched afterwards.
  EXPECT_EQ(dev.readbackBitstream().logic, impl.bitstream.logic);
}

TEST(Mbu, MatchesSequenceOfSingleFlipsSemantically) {
  // Flipping {f1, f2} at cycle t must equal flipping f1 then f2 at the same
  // instant (both before the next edge) - verified against the simulator.
  Builder b;
  b.setUnit(Unit::Registers);
  rtl::Register cnt = b.makeRegister("cnt", 4, 0);
  b.connect(cnt, b.increment(cnt.q));
  b.output("out", cnt.q);
  Netlist nl = b.finish();
  const auto impl = synth::implement(nl, fpga::DeviceSpec::small());
  fpga::Device dev(impl.spec);
  core::FadesOptions opt;
  opt.observedOutputs = {"out"};
  core::FadesTool tool(dev, impl, 32, opt);

  // cnt = 5 at cycle 5; flipping bits 0 and 1 gives 6 ^ ... compute: 5 =
  // 0101b; flip bits 0,1 -> 0110b = 6.
  std::uint32_t bit0 = 0, bit1 = 0;
  for (std::uint32_t i = 0; i < impl.flops.size(); ++i) {
    if (impl.flops[i].name == "cnt[0]") bit0 = i;
    if (impl.flops[i].name == "cnt[1]") bit1 = i;
  }
  std::vector<std::uint32_t> both{bit0, bit1};
  const auto o = tool.runMultipleBitFlipExperiment(both, 5);
  EXPECT_EQ(o, campaign::Outcome::Failure);  // counter value diverges

  // Reference: the simulator with two deposits.
  Simulator s(nl);
  s.run(5);
  EXPECT_EQ(s.portValue("out"), 5u);
  s.depositFlop(*nl.findFlop("cnt[0]"), false);
  s.depositFlop(*nl.findFlop("cnt[1]"), true);
  EXPECT_EQ(s.portValue("out"), 6u);
}

}  // namespace
}  // namespace fades
