# Empty compiler generated dependencies file for ip_core_injection.
# This may be replaced when dependencies are built.
