// AutonomousEquivalence: the autonomous-emulation backend is proven
// interchangeable with the other injectors.
//
//   * random builder designs: autonomous campaign records field-for-field
//     equal to VFIT's across the shared fault-model x target-class matrix,
//     with the autonomous cost model (exact config+workload+host sum, zero
//     configuration bytes) checked on every experiment;
//   * byte-identical run artifacts across --jobs 1/8 and both execution
//     engines through the sharded campaign runner;
//   * the MC8051 + Bubblesort workload, FF and memory campaigns;
//   * 4-way oracle (FADES / VFIT / autonomous / golden ISS) agreement on a
//     constructed matrix of cases and on the committed RTL corpus (the
//     corpus-label test replays the microcontroller cases).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/artifact.hpp"
#include "campaign/parallel.hpp"
#include "campaign/types.hpp"
#include "core/autonomous.hpp"
#include "diffcheck/case_spec.hpp"
#include "diffcheck/gen.hpp"
#include "diffcheck/oracle.hpp"
#include "mc8051/core.hpp"
#include "mc8051/workloads.hpp"
#include "netlist/netlist.hpp"
#include "sim/engine.hpp"
#include "vfit/vfit.hpp"

namespace fades {
namespace {

using campaign::CampaignSpec;
using campaign::FaultModel;
using campaign::TargetClass;
using netlist::Netlist;

// The shared matrix: every fault model x target class both simulator-backed
// injectors support on the random designs.
struct MatrixEntry {
  FaultModel model;
  TargetClass targets;
  bool needsRam;
};
const MatrixEntry kMatrix[] = {
    {FaultModel::BitFlip, TargetClass::SequentialFF, false},
    {FaultModel::BitFlip, TargetClass::MemoryBlockBit, true},
    {FaultModel::Pulse, TargetClass::CombinationalLut, false},
    {FaultModel::Indetermination, TargetClass::SequentialFF, false},
    {FaultModel::Indetermination, TargetClass::CombinationalLut, false},
};

diffcheck::CaseSpec rtlCase(std::uint64_t seed, bool withRam) {
  diffcheck::CaseSpec c;
  c.name = "autonomous-rtl-" + std::to_string(seed);
  c.kind = diffcheck::DesignKind::Rtl;
  c.rtl.seed = seed;
  c.rtl.withRam = withRam;
  c.runCycles = 48;
  c.inject.experiments = 10;
  c.inject.seed = seed * 11 + 3;
  c.inject.band = campaign::DurationBand::shortBand();
  return c;
}

TEST(AutonomousEquivalence, RandomDesignsMatchVfitAcrossMatrix) {
  for (const std::uint64_t seed : {1u, 2u, 7u}) {
    const diffcheck::CaseSpec c = rtlCase(seed, /*withRam=*/true);
    const Netlist nl = diffcheck::buildDesign(c);

    vfit::VfitOptions vOpt;
    vOpt.observedOutputs = diffcheck::observedOutputs(c);
    vOpt.keepRecords = true;
    vfit::VfitTool vfit(nl, c.runCycles, vOpt);

    core::AutonomousOptions aOpt;
    aOpt.observedOutputs = diffcheck::observedOutputs(c);
    aOpt.keepRecords = true;
    core::AutonomousTool aut(nl, c.runCycles, aOpt);

    for (const auto& m : kMatrix) {
      CampaignSpec spec = c.inject;
      spec.model = m.model;
      spec.targets = m.targets;

      const auto vPool = vfit.campaignPool(spec);
      const auto aPool = aut.campaignPool(spec);
      ASSERT_EQ(vPool, aPool) << "pools diverge, seed " << seed;

      const double expectedWorkload =
          static_cast<double>(c.runCycles) / aOpt.fpgaClockHz;
      for (unsigned e = 0; e < spec.experiments; ++e) {
        const auto v = vfit.runCampaignExperiment(spec, vPool, e);
        const auto a = aut.runCampaignExperiment(spec, aPool, e);
        const auto tag = std::string(campaign::toString(m.model)) + "/" +
                         campaign::toString(m.targets) + " seed " +
                         std::to_string(seed) + " exp " + std::to_string(e);
        // Same semantic engine: draw, target and classification identical.
        ASSERT_TRUE(v.hasRecord && a.hasRecord) << tag;
        EXPECT_EQ(v.record.targetName, a.record.targetName) << tag;
        EXPECT_EQ(v.record.injectCycle, a.record.injectCycle) << tag;
        EXPECT_EQ(v.record.durationCycles, a.record.durationCycles) << tag;
        EXPECT_EQ(v.outcome, a.outcome) << tag;
        // Autonomous cost model: exact decomposition, workload at the
        // emulator clock, no configuration traffic.
        EXPECT_EQ(a.modeledSeconds,
                  a.configSeconds + a.workloadSeconds + a.hostSeconds) << tag;
        EXPECT_EQ(a.workloadSeconds, expectedWorkload) << tag;
        EXPECT_EQ(a.hostSeconds, aOpt.hostPerInjectionSeconds) << tag;
        EXPECT_GT(a.configSeconds, 0.0) << tag;
        EXPECT_EQ(a.bytesToDevice, 0u) << tag;
        EXPECT_EQ(a.bytesFromDevice, 0u) << tag;
        EXPECT_EQ(a.sessions, 0u) << tag;
        EXPECT_EQ(a.record.modeledSeconds, a.modeledSeconds) << tag;
        // The whole point of the technique: per-injection overhead beyond
        // the workload is a handful of emulator cycles plus host turnaround,
        // well under a millisecond-and-change even with the scan chain.
        EXPECT_LT(a.configSeconds + a.hostSeconds,
                  aut.injectionOverheadSeconds(10000)) << tag;
      }
    }
  }
}

std::string artifactString(const campaign::CampaignResult& result) {
  return campaign::toRunArtifact(result, "autonomous_equiv",
                                 /*includeMetrics=*/false)
      .toJson()
      .dump(2);
}

TEST(AutonomousEquivalence, JobsAndEngineArtifactInvariance) {
  const diffcheck::CaseSpec c = rtlCase(5, /*withRam=*/false);
  const Netlist nl = diffcheck::buildDesign(c);

  CampaignSpec spec = c.inject;
  spec.model = FaultModel::Pulse;
  spec.targets = TargetClass::CombinationalLut;
  spec.experiments = 100;

  std::vector<std::string> artifacts;
  for (const auto engine :
       {sim::EngineKind::EventDriven, sim::EngineKind::Compiled}) {
    for (const unsigned jobs : {1u, 8u}) {
      core::AutonomousOptions opt;
      opt.observedOutputs = diffcheck::observedOutputs(c);
      opt.keepRecords = true;
      opt.engine = engine;
      campaign::ParallelOptions popt;
      popt.jobs = jobs;
      campaign::ParallelCampaignRunner runner(
          core::autonomousEngineFactory(nl, c.runCycles, opt), popt);
      artifacts.push_back(artifactString(runner.run(spec)));
    }
  }
  for (std::size_t i = 1; i < artifacts.size(); ++i) {
    EXPECT_EQ(artifacts[0], artifacts[i]) << "variant " << i;
  }
}

TEST(AutonomousEquivalence, Mc8051BubblesortMatchesVfit) {
  const auto workload = mc8051::bubblesort(6);
  const Netlist nl = mc8051::buildCore(workload.bytes);

  vfit::VfitOptions vOpt;
  vOpt.keepRecords = true;
  vfit::VfitTool vfit(nl, workload.cycles, vOpt);

  core::AutonomousOptions aOpt;
  aOpt.keepRecords = true;
  core::AutonomousTool aut(nl, workload.cycles, aOpt);

  // The instrumentation reports real area overhead on the full core: a mask
  // and a shadow per flip-flop, and golden-copy bits for every writable RAM.
  EXPECT_EQ(aut.model().chainBits, nl.flopCount());
  EXPECT_EQ(aut.model().addedFlops, 2 * nl.flopCount());
  EXPECT_GT(aut.model().shadowRamBits, 0u);
  EXPECT_GT(aut.restoreCycles(), 1u);

  for (const auto targets :
       {TargetClass::SequentialFF, TargetClass::MemoryBlockBit}) {
    CampaignSpec spec;
    spec.model = FaultModel::BitFlip;
    spec.targets = targets;
    spec.experiments = 16;
    spec.seed = 2006;

    const auto vres = vfit.runCampaign(spec);
    const auto ares = aut.runCampaign(spec);
    EXPECT_EQ(vres.failures, ares.failures);
    EXPECT_EQ(vres.latents, ares.latents);
    EXPECT_EQ(vres.silents, ares.silents);
    ASSERT_EQ(vres.records.size(), ares.records.size());
    for (std::size_t i = 0; i < vres.records.size(); ++i) {
      EXPECT_EQ(vres.records[i].targetName, ares.records[i].targetName);
      EXPECT_EQ(vres.records[i].injectCycle, ares.records[i].injectCycle);
      EXPECT_EQ(vres.records[i].outcome, ares.records[i].outcome);
    }
  }
}

TEST(AutonomousEquivalence, FourWayOracleAgreesOnConstructedMatrix) {
  for (const auto& m : kMatrix) {
    diffcheck::CaseSpec c = rtlCase(3, m.needsRam);
    c.inject.model = m.model;
    c.inject.targets = m.targets;
    const auto rep = diffcheck::checkCase(c);
    EXPECT_TRUE(rep.ok()) << rep.toJson().dump(2);
    // The autonomous pool enumeration equals VFIT's, so whenever VFIT could
    // inject, the autonomous backend must have run (and agreed).
    if (rep.vfitRan) EXPECT_TRUE(rep.autonomousRan);
  }
}

TEST(AutonomousEquivalence, FourWayOracleAgreesOnCommittedRtlCorpus) {
  unsigned replayed = 0, autonomousRan = 0;
  for (const auto& c : diffcheck::seedCorpus()) {
    if (c.kind != diffcheck::DesignKind::Rtl) continue;
    const auto rep = diffcheck::checkCase(c);
    EXPECT_TRUE(rep.ok()) << c.name << ": " << rep.toJson().dump(2);
    if (rep.vfitRan) {
      EXPECT_TRUE(rep.autonomousRan) << c.name;
    }
    ++replayed;
    if (rep.autonomousRan) ++autonomousRan;
  }
  EXPECT_GE(replayed, 8u);
  EXPECT_GE(autonomousRan, 4u);
}

}  // namespace
}  // namespace fades
