
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc8051/assembler.cpp" "src/mc8051/CMakeFiles/fades_mc8051.dir/assembler.cpp.o" "gcc" "src/mc8051/CMakeFiles/fades_mc8051.dir/assembler.cpp.o.d"
  "/root/repo/src/mc8051/core.cpp" "src/mc8051/CMakeFiles/fades_mc8051.dir/core.cpp.o" "gcc" "src/mc8051/CMakeFiles/fades_mc8051.dir/core.cpp.o.d"
  "/root/repo/src/mc8051/isa.cpp" "src/mc8051/CMakeFiles/fades_mc8051.dir/isa.cpp.o" "gcc" "src/mc8051/CMakeFiles/fades_mc8051.dir/isa.cpp.o.d"
  "/root/repo/src/mc8051/iss.cpp" "src/mc8051/CMakeFiles/fades_mc8051.dir/iss.cpp.o" "gcc" "src/mc8051/CMakeFiles/fades_mc8051.dir/iss.cpp.o.d"
  "/root/repo/src/mc8051/workloads.cpp" "src/mc8051/CMakeFiles/fades_mc8051.dir/workloads.cpp.o" "gcc" "src/mc8051/CMakeFiles/fades_mc8051.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/fades_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fades_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fades_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
