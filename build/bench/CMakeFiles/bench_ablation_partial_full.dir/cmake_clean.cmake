file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_partial_full.dir/bench_ablation_partial_full.cpp.o"
  "CMakeFiles/bench_ablation_partial_full.dir/bench_ablation_partial_full.cpp.o.d"
  "bench_ablation_partial_full"
  "bench_ablation_partial_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_partial_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
