# Empty dependencies file for bench_fig11_bitflip.
# This may be replaced when dependencies are built.
