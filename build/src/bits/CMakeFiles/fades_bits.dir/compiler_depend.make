# Empty compiler generated dependencies file for fades_bits.
# This may be replaced when dependencies are built.
