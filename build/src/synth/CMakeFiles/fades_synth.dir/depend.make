# Empty dependencies file for fades_synth.
# This may be replaced when dependencies are built.
