file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sequential.dir/bench_fig12_sequential.cpp.o"
  "CMakeFiles/bench_fig12_sequential.dir/bench_fig12_sequential.cpp.o.d"
  "bench_fig12_sequential"
  "bench_fig12_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
