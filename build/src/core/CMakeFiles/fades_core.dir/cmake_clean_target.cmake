file(REMOVE_RECURSE
  "libfades_core.a"
)
