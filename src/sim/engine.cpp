#include "sim/engine.hpp"

#include "common/error.hpp"
#include "sim/compiled.hpp"
#include "sim/simulator.hpp"

namespace fades::sim {

const char* toString(EngineKind kind) {
  switch (kind) {
    case EngineKind::EventDriven: return "event";
    case EngineKind::Compiled: return "compiled";
  }
  return "?";
}

bool engineKindFromString(std::string_view text, EngineKind& out) {
  if (text == "event") {
    out = EngineKind::EventDriven;
    return true;
  }
  if (text == "compiled") {
    out = EngineKind::Compiled;
    return true;
  }
  return false;
}

std::unique_ptr<Engine> makeEngine(EngineKind kind,
                                   const netlist::Netlist& netlist) {
  switch (kind) {
    case EngineKind::EventDriven:
      return std::make_unique<Simulator>(netlist);
    case EngineKind::Compiled:
      return std::make_unique<CompiledSimulator>(netlist);
  }
  common::raise(common::ErrorKind::InvalidArgument, "unknown engine kind");
}

}  // namespace fades::sim
