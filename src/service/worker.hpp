// Campaign worker daemon - the client half of the distributed service.
//
// A worker connects to the coordinator, leases blocks of experiments, runs
// each experiment through the same runExperimentWithRetry discipline the
// in-process parallel runner uses (transient errors retry against a
// recovered replica, persistent ones quarantine the experiment), and streams
// the block's outcomes back in one completion message. Between experiments
// it heartbeats to keep the lease alive; a "revoked" answer means the
// coordinator gave up on it (deadline passed, block re-leased) and the
// remaining work of the block is abandoned - finishing it would only produce
// a duplicate for the digest check.
//
// Link robustness mirrors the worker's own experiment discipline: any wire
// error drops the connection, and the daemon reconnects with capped
// exponential backoff. Campaign state lives entirely on the coordinator, so
// a reconnected worker just asks for the next lease.
//
// The `tamper` hook exists to make the byzantine defense testable: it
// mutates outcomes after execution but before they hit the wire - a worker
// that lies about results, not one that mis-runs them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "campaign/types.hpp"
#include "obs/metrics.hpp"
#include "service/jobspec.hpp"
#include "service/wire.hpp"

namespace fades::service {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Stable worker identity; strikes, backoff and bans attach to this name
  /// across reconnects. Empty derives "worker-<pid>".
  std::string name;
  /// Attempt budget per experiment (the PR-4 retry/quarantine discipline).
  unsigned experimentAttempts = 3;
  /// Lease keep-alive period; must be well under the coordinator's leaseMs.
  int heartbeatMs = 1000;
  /// Per-frame read stall bound on the coordinator connection.
  int recvTimeoutMs = 5000;
  /// Reconnect backoff: base doubles per failed attempt up to the cap.
  int reconnectBaseMs = 200;
  int reconnectCapMs = 5000;
  /// Consecutive failed connect attempts before run() gives up (0 = retry
  /// until stopped).
  unsigned maxReconnects = 0;
  /// Built campaign systems kept alive, keyed by job fingerprint. Building
  /// a system is the expensive part (synthesis + golden run), so a worker
  /// serving few campaigns reuses them across leases.
  unsigned maxCachedSystems = 2;
  /// Byzantine test hook: mutate each outcome before it is streamed back.
  std::function<void(campaign::ExperimentOutcome&)> tamper;
};

class WorkerDaemon {
 public:
  explicit WorkerDaemon(WorkerOptions options);

  /// Serve leases until the coordinator answers "shutdown" (returns 0),
  /// stop() is called (returns 0), or the reconnect budget runs out
  /// (returns 1).
  int run();

  /// Ask run() to wind down at the next poll point.
  void stop() { stop_.store(true); }

  const std::string& name() const { return opt_.name; }

 private:
  struct CachedSystem {
    std::shared_ptr<CampaignSystem> system;
    std::unique_ptr<campaign::CampaignEngine> engine;
    std::vector<std::uint32_t> pool;
    /// job.prune only: the deterministic fades.prune/1 plan, the member ->
    /// class map, and the representatives this worker has already executed
    /// (a member leased before its representative runs it on demand, once).
    campaign::PrunePlan plan;
    std::vector<std::int32_t> memberClass;
    std::map<std::uint64_t, campaign::ExperimentOutcome> repOutcomes;
    std::uint64_t lastUsed = 0;
  };

  enum class Served : std::uint8_t { Shutdown, Stopped, LinkLost };

  Served serveConnection(const Socket& sock);
  void runLease(const Socket& sock, const obs::Json& lease);
  CachedSystem& systemFor(const JobSpec& job, const std::string& fp);
  /// One experiment of `job`: executed normally, or - for a collapsed
  /// member of a prune plan - synthesized from its class representative
  /// (run locally on demand and cached).
  campaign::ExperimentOutcome runJobExperiment(CachedSystem& sys,
                                               const JobSpec& job,
                                               std::uint64_t index,
                                               obs::Counter& quarantined);
  void sleepInterruptible(int ms);

  WorkerOptions opt_;
  std::atomic<bool> stop_{false};
  std::map<std::string, CachedSystem> systems_;
  std::uint64_t useSeq_ = 0;
  /// Fingerprints whose system failed to build or hit a fatal engine error:
  /// leases for them are released instead of retried forever.
  std::map<std::string, std::string> poisoned_;
};

}  // namespace fades::service
