// Case minimization: greedy reduction of a failing differential case to a
// minimal reproducer.
//
// The shrinker repeatedly proposes reduced variants of the case - fewer
// program instructions, a smaller circuit, a shorter workload (and with it
// an earlier injection instant), fewer experiments - and keeps a variant iff
// the oracle still reports a violation of the SAME rule. Candidates within a
// round are proposed in a fixed order and the first reproducing one wins, so
// the minimal case is a pure function of (case, oracle, budget): evaluating
// candidates on 1 worker or 8 yields the identical reproducer. The oracle is
// injected as a function so tests can plant synthetic failures.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "diffcheck/case_spec.hpp"
#include "diffcheck/oracle.hpp"

namespace fades::diffcheck {

/// Oracle the shrinker drives: all violations for a candidate case. The
/// production oracle is wrapped as `[&](const CaseSpec& s) {
/// return checkCase(s, opt).violations; }`; tests substitute synthetic ones.
/// Exceptions thrown by the oracle mark the candidate as non-reproducing.
using CaseOracle = std::function<std::vector<Violation>(const CaseSpec&)>;

struct ShrinkOptions {
  /// Concurrent candidate evaluations. Only wall-clock changes with this:
  /// the evaluation charge and the accepted candidate sequence are those of
  /// the sequential scan.
  unsigned jobs = 1;
  /// Oracle-call budget; the shrinker returns its best-so-far when spent.
  unsigned maxEvaluations = 200;
};

struct ShrinkResult {
  CaseSpec minimal;
  /// The target rule's violation as observed on `minimal` (the input
  /// violation when no reduction was accepted).
  Violation violation;
  unsigned accepted = 0;   // reductions that kept the violation alive
  unsigned evaluated = 0;  // oracle calls charged against the budget
  bool budgetExhausted = false;
};

/// Reduce `failing` (known to violate `violation.rule` under `oracle`) to a
/// locally-minimal case that still violates the same rule.
ShrinkResult shrinkCase(const CaseSpec& failing, const Violation& violation,
                        const CaseOracle& oracle, ShrinkOptions opt = {});

/// The reduction candidates of one round, in acceptance-priority order.
/// Exposed for tests (ordering is part of the determinism contract).
std::vector<CaseSpec> shrinkCandidates(const CaseSpec& c);

}  // namespace fades::diffcheck
