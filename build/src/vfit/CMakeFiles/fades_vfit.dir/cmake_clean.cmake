file(REMOVE_RECURSE
  "CMakeFiles/fades_vfit.dir/vfit.cpp.o"
  "CMakeFiles/fades_vfit.dir/vfit.cpp.o.d"
  "libfades_vfit.a"
  "libfades_vfit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fades_vfit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
