#include "campaign/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "campaign/journal.hpp"
#include "campaign/prune_plan.hpp"
#include "common/error.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace fades::campaign {

using common::ErrorKind;
using common::require;

namespace {

unsigned resolveJobs(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

// ---------------------------------------------------------------------------
// CampaignEngine
// ---------------------------------------------------------------------------

ExperimentOutcome CampaignEngine::synthesizeOutcome(
    const CampaignSpec& /*spec*/, std::span<const std::uint32_t> /*pool*/,
    unsigned /*index*/, const ExperimentOutcome& /*representative*/) {
  throw common::FadesError(ErrorKind::InvalidArgument,
                           "this campaign engine does not support "
                           "fades.prune/1 plans");
}

// ---------------------------------------------------------------------------
// ProgressTracker
// ---------------------------------------------------------------------------

ProgressTracker::ProgressTracker(std::string model, std::uint64_t total,
                                 std::uint64_t interval)
    : model_(std::move(model)),
      total_(total),
      interval_(interval),
      start_(std::chrono::steady_clock::now()),
      gauge_(obs::Registry::global().gauge("campaign.progress_pct")) {
  gauge_.set(0.0);
}

void ProgressTracker::record(const ExperimentOutcome& outcome) {
  if (interval_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  if (outcome.quarantined) {
    ++quarantined_;
  } else {
    switch (outcome.outcome) {
      case Outcome::Failure: ++failures_; break;
      case Outcome::Latent: ++latents_; break;
      case Outcome::Silent: ++silents_; break;
    }
    modeledSum_ += outcome.modeledSeconds;
  }
  if (done_ % interval_ != 0 && done_ != total_) return;
  emitLocked();
}

void ProgressTracker::heartbeat() {
  std::lock_guard<std::mutex> lock(mu_);
  emitLocked();
}

void ProgressTracker::emitLocked() {
  gauge_.set(total_ == 0 ? 100.0 : 100.0 * done_ / total_);
  // ETA from observed rates: wall-clock extrapolates elapsed time per
  // completed experiment, modeled extrapolates the accumulated per-fault
  // board seconds (quarantined experiments carry no modeled cost, so they
  // feed the wall rate only). With no completions - a heartbeat firing
  // before the first experiment lands - there is no rate to extrapolate,
  // and the fields carry a literal null instead of a division by zero.
  const std::uint64_t remaining = total_ > done_ ? total_ - done_ : 0;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const bool haveWallRate = done_ != 0 && elapsed > 0.0;
  const double etaWall =
      haveWallRate ? elapsed / static_cast<double>(done_) *
                         static_cast<double>(remaining)
                   : 0.0;
  const std::uint64_t tallied = failures_ + latents_ + silents_;
  const double etaModeled =
      tallied == 0 ? 0.0
                   : modeledSum_ / static_cast<double>(tallied) *
                         static_cast<double>(remaining);
  FADES_LOG(Info) << "campaign progress" << obs::kv("model", model_)
                  << obs::kv("done", done_) << obs::kv("total", total_)
                  << obs::kv("failures", failures_)
                  << obs::kv("latents", latents_)
                  << obs::kv("silents", silents_)
                  << obs::kv("quarantined", quarantined_)
                  << obs::kv("modeled_s", modeledSum_)
                  << (haveWallRate ? obs::kv("eta_wall_s", etaWall)
                                   : obs::kv("eta_wall_s", "null"))
                  << (tallied != 0 ? obs::kv("eta_modeled_s", etaModeled)
                                   : obs::kv("eta_modeled_s", "null"));
}

// ---------------------------------------------------------------------------
// runExperimentWithRetry
// ---------------------------------------------------------------------------

ExperimentOutcome runExperimentWithRetry(CampaignEngine& engine,
                                         const CampaignSpec& spec,
                                         std::span<const std::uint32_t> pool,
                                         unsigned index, unsigned attempts,
                                         obs::Counter& quarantineCounter) {
  const unsigned budget = std::max(1u, attempts);
  for (unsigned rerun = 0;; ++rerun) {
    try {
      ExperimentOutcome outcome =
          engine.runExperimentAt(spec, pool, index, rerun);
      outcome.index = index;
      outcome.attempts = rerun + 1;
      return outcome;
    } catch (const common::FadesError& err) {
      if (!common::isTransientError(err.kind())) throw;
      engine.recover();
      if (rerun + 1 >= budget) {
        ExperimentOutcome outcome;
        outcome.index = index;
        outcome.quarantined = true;
        outcome.failureKind = err.kind();
        outcome.failureMessage = err.what();
        outcome.attempts = rerun + 1;
        quarantineCounter.inc();
        return outcome;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ParallelCampaignRunner
// ---------------------------------------------------------------------------

ParallelCampaignRunner::ParallelCampaignRunner(EngineFactory factory,
                                               ParallelOptions options)
    : factory_(std::move(factory)),
      opt_(options),
      jobs_(resolveJobs(options.jobs)) {
  require(static_cast<bool>(factory_), ErrorKind::InvalidArgument,
          "parallel campaign runner needs an engine factory");
}

void ParallelCampaignRunner::ensureEngines(unsigned count) {
  if (engines_.size() >= count) return;
  const std::size_t have = engines_.size();
  engines_.resize(count);
  // Build the missing replicas concurrently: each factory call pays the
  // one-time setup (bitstream download + golden run), so replica setup
  // scales with the worker count instead of serializing in front of it.
  std::vector<std::thread> builders;
  std::mutex errMu;
  std::exception_ptr firstError;
  for (std::size_t w = have; w < count; ++w) {
    builders.emplace_back([this, w, &errMu, &firstError] {
      try {
        engines_[w] = factory_();
      } catch (...) {
        std::lock_guard<std::mutex> lock(errMu);
        if (!firstError) firstError = std::current_exception();
      }
    });
  }
  for (auto& t : builders) t.join();
  if (firstError) {
    engines_.resize(have);
    std::rethrow_exception(firstError);
  }
  for (const auto& engine : engines_) {
    require(engine != nullptr, ErrorKind::InvalidArgument,
            "engine factory returned null");
  }
}

CampaignResult ParallelCampaignRunner::run(const CampaignSpec& spec) {
  const unsigned workers =
      std::max(1u, std::min(jobs_, std::max(1u, spec.experiments)));
  ensureEngines(workers);

  obs::Span campaignSpan{"campaign.sharded",
                         {{"model", toString(spec.model)},
                          {"targets", toString(spec.targets)},
                          {"jobs", std::to_string(workers)}}};
  const std::vector<std::uint32_t> pool = engines_[0]->enumeratePool(spec);

  std::vector<ExperimentOutcome> outcomes(spec.experiments);
  ProgressTracker progress(toString(spec.model), spec.experiments,
                           opt_.progressInterval);

  // Checkpoint/resume: journaled outcomes are folded back in without being
  // re-run, so a resumed campaign produces artifacts byte-identical to an
  // uninterrupted one (every outcome is a pure function of (spec, index)
  // and the fold order is index order either way).
  std::vector<char> alreadyDone(spec.experiments, 0);
  if (opt_.journal != nullptr) {
    opt_.journal->open(spec, opt_.resume);
    std::uint64_t resumed = 0;
    for (const auto& [index, outcome] : opt_.journal->completed()) {
      if (index >= spec.experiments) continue;
      outcomes[index] = outcome;
      alreadyDone[index] = 1;
      ++resumed;
      progress.record(outcome);
    }
    if (resumed != 0) {
      obs::Registry::global()
          .counter("campaign.resumed_experiments")
          .add(resumed);
      FADES_LOG(Info) << "campaign resume"
                      << obs::kv("journal", opt_.journal->path())
                      << obs::kv("resumed", resumed)
                      << obs::kv("total", spec.experiments);
    }
  }

  // Fault-list pruning: collapsed members never reach the worker loop.
  // They are pre-marked done (unless the journal already materialized them
  // on a previous run) and synthesized from their representatives after the
  // workers finish, so only the plan's executedCount() experiments execute.
  std::vector<char> fromJournal;
  if (opt_.prunePlan != nullptr) {
    const PrunePlan& plan = *opt_.prunePlan;
    plan.validate();
    require(specKey(plan.spec) == specKey(spec), ErrorKind::InvalidArgument,
            "prune plan was derived for a different campaign spec");
    require(plan.poolSize == pool.size(), ErrorKind::InvalidArgument,
            "prune plan was derived for a different target pool");
    fromJournal = alreadyDone;
    for (const auto& cls : plan.classes) {
      for (const std::uint64_t m : cls.members) alreadyDone[m] = 1;
    }
  }

  const unsigned attempts = std::max(1u, opt_.experimentAttempts);
  // Lease width: bit-parallel engines claim whole waves of contiguous
  // indices (wave composition cannot change outcomes - every experiment
  // stays a pure function of its index - so block leasing only changes
  // wall-clock, like everything else in this runner).
  const unsigned waveWidth = std::max(1u, engines_[0]->waveWidth());
  obs::Counter& cQuarantined =
      obs::Registry::global().counter("campaign.quarantined");
  std::atomic<unsigned> next{0};
  std::atomic<bool> abort{false};
  std::mutex errMu;
  std::exception_ptr firstError;

  auto workerLoop = [&](unsigned w) {
    try {
      std::vector<unsigned> pending;
      while (!abort.load(std::memory_order_relaxed)) {
        const unsigned base = next.fetch_add(waveWidth,
                                             std::memory_order_relaxed);
        if (base >= spec.experiments) break;
        const unsigned end = std::min(base + waveWidth, spec.experiments);
        pending.clear();
        for (unsigned e = base; e < end; ++e) {
          if (!alreadyDone[e]) pending.push_back(e);
        }
        if (pending.empty()) continue;
        // Wave path first: one batched call for the lease (resume gaps
        // just shrink the wave). A transient error drops the whole lease
        // down to the per-experiment retry/quarantine path below.
        bool waveDone = false;
        if (waveWidth > 1) {
          try {
            auto outs = engines_[w]->runWaveAt(spec, pool, pending, 0);
            require(outs.size() == pending.size(),
                    ErrorKind::InvalidArgument,
                    "engine wave returned wrong outcome count");
            for (std::size_t i = 0; i < pending.size(); ++i) {
              outs[i].index = pending[i];
              outs[i].attempts = 1;
              outcomes[pending[i]] = std::move(outs[i]);
              if (opt_.journal != nullptr) {
                opt_.journal->append(outcomes[pending[i]]);
              }
              progress.record(outcomes[pending[i]]);
            }
            waveDone = true;
          } catch (const common::FadesError& err) {
            if (!common::isTransientError(err.kind())) throw;
            engines_[w]->recover();
          }
        }
        if (waveDone) continue;
        // Experiment-level isolation: transient errors re-run the
        // experiment (with a fresh link fault stream via `rerun`) after
        // restoring the replica; exhausting the attempt budget quarantines
        // this one experiment. Fatal errors still abort the campaign.
        for (const unsigned e : pending) {
          if (abort.load(std::memory_order_relaxed)) break;
          const ExperimentOutcome outcome = runExperimentWithRetry(
              *engines_[w], spec, pool, e, attempts, cQuarantined);
          outcomes[e] = outcome;
          if (opt_.journal != nullptr) opt_.journal->append(outcome);
          progress.record(outcome);
        }
      }
    } catch (...) {
      abort.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(errMu);
      if (!firstError) firstError = std::current_exception();
    }
  };

  if (workers == 1) {
    workerLoop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) threads.emplace_back(workerLoop, w);
    for (auto& t : threads) t.join();
  }
  if (firstError) std::rethrow_exception(firstError);

  // Materialize the collapsed members. Synthesis is cheap (no execution),
  // so running it single-threaded on engine 0 after the join keeps the
  // journal append order race-free; a quarantined representative has no
  // result to clone, so its members fall back to real execution.
  if (opt_.prunePlan != nullptr) {
    obs::Counter& cPruned =
        obs::Registry::global().counter("campaign.pruned_experiments");
    for (const auto& cls : opt_.prunePlan->classes) {
      const ExperimentOutcome& rep = outcomes[cls.representative];
      for (const std::uint64_t m : cls.members) {
        if (fromJournal[m]) continue;  // resumed from a previous run
        const unsigned index = static_cast<unsigned>(m);
        if (rep.quarantined) {
          outcomes[m] = runExperimentWithRetry(*engines_[0], spec, pool,
                                               index, attempts, cQuarantined);
        } else {
          outcomes[m] = engines_[0]->synthesizeOutcome(spec, pool, index, rep);
          outcomes[m].index = m;
          outcomes[m].attempts = 0;
          cPruned.inc();
        }
        if (opt_.journal != nullptr) opt_.journal->append(outcomes[m]);
        progress.record(outcomes[m]);
      }
    }
  }

  // Merge in experiment-index order: the exact fold sequence of the serial
  // loop, so sums and stats come out bit-identical.
  CampaignResult result;
  result.spec = spec;
  for (const auto& outcome : outcomes) result.fold(outcome);
  return result;
}

}  // namespace fades::campaign
