file(REMOVE_RECURSE
  "CMakeFiles/fades_rtl.dir/builder.cpp.o"
  "CMakeFiles/fades_rtl.dir/builder.cpp.o.d"
  "libfades_rtl.a"
  "libfades_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fades_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
