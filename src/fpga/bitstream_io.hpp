// Bitstream serialization - the on-disk "configuration file" of Figure 1.
//
// A compact container with a magic header, the device geometry (so a
// bitstream cannot be loaded onto an incompatible device), both
// configuration planes, and a CRC-32 over the payload, mirroring how real
// vendor bitstreams carry sync words and CRC frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/device.hpp"

namespace fades::fpga {

/// Serialize to the container format (in-memory).
std::vector<std::uint8_t> serializeBitstream(const DeviceSpec& spec,
                                             const Bitstream& bitstream);

/// Parse a container; throws ConfigError on bad magic, geometry mismatch
/// against `expected`, truncation, or CRC failure.
Bitstream deserializeBitstream(const DeviceSpec& expected,
                               std::vector<std::uint8_t> const& bytes);

/// File convenience wrappers.
void saveBitstream(const std::string& path, const DeviceSpec& spec,
                   const Bitstream& bitstream);
Bitstream loadBitstream(const std::string& path, const DeviceSpec& expected);

/// CRC-32 (IEEE 802.3, reflected) used by the container.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

}  // namespace fades::fpga
