#include "campaign/journal.hpp"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "campaign/artifact.hpp"
#include "common/error.hpp"
#include "obs/json.hpp"

namespace fades::campaign {

using common::ErrorKind;
using common::require;
using obs::Json;

namespace {

constexpr const char* kSchema = "fades.journal/1";

Json headerJson(const CampaignSpec& spec) {
  Json j = Json::object();
  j.set("schema", Json(std::string(kSchema)));
  j.set("spec", toJson(spec));
  return j;
}

bool readU64(const Json& j, const char* key, std::uint64_t& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isNumber()) return false;
  out = static_cast<std::uint64_t>(f->asInt());
  return true;
}

bool readDouble(const Json& j, const char* key, double& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isNumber()) return false;
  out = f->asNumber();
  return true;
}

bool readString(const Json& j, const char* key, std::string& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isString()) return false;
  out = f->asString();
  return true;
}

}  // namespace

Json CampaignJournal::outcomeJson(const ExperimentOutcome& x) {
  // Doubles survive the trip exactly: obs::Json prints them with enough
  // digits to round-trip through strtod bit-for-bit, which is what lets a
  // resumed campaign fold journaled outcomes into sums identical to the
  // live run's.
  Json j = Json::object();
  j.set("index", Json(x.index));
  j.set("attempts", Json(static_cast<std::uint64_t>(x.attempts)));
  if (x.quarantined) {
    j.set("quarantined", Json(true));
    j.set("kind", Json(std::string(common::toString(x.failureKind))));
    j.set("error", Json(x.failureMessage));
  } else {
    j.set("outcome", Json(std::string(toString(x.outcome))));
    j.set("modeled_seconds", Json(x.modeledSeconds));
    j.set("config_seconds", Json(x.configSeconds));
    j.set("workload_seconds", Json(x.workloadSeconds));
    j.set("host_seconds", Json(x.hostSeconds));
    j.set("bytes_to_device", Json(x.bytesToDevice));
    j.set("bytes_from_device", Json(x.bytesFromDevice));
    j.set("sessions", Json(x.sessions));
    if (x.hasRecord) j.set("record", toJson(x.record));
  }
  return j;
}

std::string CampaignJournal::outcomeLine(const ExperimentOutcome& x) {
  return outcomeJson(x).dump() + "\n";
}

bool CampaignJournal::outcomeFromJson(const Json& j, ExperimentOutcome& out) {
  if (!j.isObject()) return false;
  out = ExperimentOutcome{};
  std::uint64_t attempts = 0;
  if (!readU64(j, "index", out.index) || !readU64(j, "attempts", attempts)) {
    return false;
  }
  out.attempts = static_cast<unsigned>(attempts);
  const Json* quarantined = j.find("quarantined");
  if (quarantined != nullptr && quarantined->asBool()) {
    out.quarantined = true;
    std::string kind;
    if (!readString(j, "kind", kind) ||
        !readString(j, "error", out.failureMessage)) {
      return false;
    }
    return errorKindFromString(kind, out.failureKind);
  }
  std::string outcome;
  if (!readString(j, "outcome", outcome) ||
      !outcomeFromString(outcome, out.outcome) ||
      !readDouble(j, "modeled_seconds", out.modeledSeconds) ||
      !readDouble(j, "config_seconds", out.configSeconds) ||
      !readDouble(j, "workload_seconds", out.workloadSeconds) ||
      !readDouble(j, "host_seconds", out.hostSeconds) ||
      !readU64(j, "bytes_to_device", out.bytesToDevice) ||
      !readU64(j, "bytes_from_device", out.bytesFromDevice) ||
      !readU64(j, "sessions", out.sessions)) {
    return false;
  }
  if (const Json* record = j.find("record")) {
    if (!recordFromJson(*record, out.record)) return false;
    out.hasRecord = true;
  }
  return true;
}

bool CampaignJournal::parseOutcomeLine(const std::string& line,
                                       ExperimentOutcome& out) {
  const auto parsed = Json::parse(line);
  if (!parsed) return false;
  return outcomeFromJson(*parsed, out);
}

void CampaignJournal::open(const CampaignSpec& spec, bool resume) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  completed_.clear();

  // Byte offset of the end of the last committed (parsed and
  // newline-terminated) line; everything past it is a torn tail from a
  // killed writer and gets truncated before we append.
  std::size_t committedEnd = 0;
  bool haveHeader = false;
  if (resume) {
    // Stream the file line by line with a bounded buffer instead of
    // slurping it whole: a corrupt or adversarial journal whose "line"
    // never ends fails fast with a ConfigError naming the byte offset of
    // the offending line, instead of growing the buffer without bound.
    struct FileCloser {
      void operator()(std::FILE* f) const { std::fclose(f); }
    };
    std::unique_ptr<std::FILE, FileCloser> in(
        std::fopen(path_.c_str(), "rb"));
    if (in != nullptr) {
      std::string buffer;
      char chunk[1 << 16];
      std::size_t consumed = 0;  // bytes already dropped from buffer's front
      bool stop = false;
      while (!stop) {
        const std::size_t n = std::fread(chunk, 1, sizeof chunk, in.get());
        if (n == 0) break;
        buffer.append(chunk, n);
        std::size_t pos = 0;
        while (!stop) {
          const std::size_t nl = buffer.find('\n', pos);
          if (nl == std::string::npos) break;
          std::string line = buffer.substr(pos, nl - pos);
          // CRLF-tolerant: a journal that crossed a Windows filesystem or a
          // text-mode transfer still resumes ('\r' is not part of the
          // record; committedEnd keeps counting the bytes as written).
          if (!line.empty() && line.back() == '\r') line.pop_back();
          require(line.size() <= kMaxLineBytes, ErrorKind::ConfigError,
                  "journal " + path_ + ": line exceeding " +
                      std::to_string(kMaxLineBytes) +
                      " bytes at byte offset " +
                      std::to_string(consumed + pos));
          if (!haveHeader) {
            const auto header = Json::parse(line);
            std::string schema;
            require(header && header->isObject() &&
                        readString(*header, "schema", schema) &&
                        schema == kSchema,
                    ErrorKind::ConfigError,
                    "journal " + path_ +
                        " has no valid fades.journal/1 header");
            const Json* fileSpec = header->find("spec");
            require(fileSpec != nullptr &&
                        fileSpec->dump() == toJson(spec).dump(),
                    ErrorKind::ConfigError,
                    "journal " + path_ +
                        " was written for a different campaign spec");
            haveHeader = true;
          } else {
            ExperimentOutcome outcome;
            if (!parseOutcomeLine(line, outcome)) {
              stop = true;  // stop at corruption
              break;
            }
            completed_[outcome.index] = std::move(outcome);
          }
          committedEnd = consumed + nl + 1;
          pos = nl + 1;
        }
        buffer.erase(0, pos);
        consumed += pos;
        // An unterminated line past the bound is rejected before reading
        // further - same offset diagnostics as the terminated case.
        require(stop || buffer.size() <= kMaxLineBytes,
                ErrorKind::ConfigError,
                "journal " + path_ + ": line exceeding " +
                    std::to_string(kMaxLineBytes) + " bytes at byte offset " +
                    std::to_string(consumed));
      }
      // Anything left in `buffer` is a torn tail from a killed writer;
      // truncation below drops it.
    }
  }

  if (haveHeader) {
    // Drop the torn tail (if any), then extend the surviving journal.
    if (truncate(path_.c_str(), static_cast<off_t>(committedEnd)) != 0) {
      common::raise(ErrorKind::ConfigError,
                    "cannot truncate journal " + path_);
    }
    file_ = std::fopen(path_.c_str(), "ab");
    require(file_ != nullptr, ErrorKind::ConfigError,
            "cannot open journal " + path_ + " for append");
    return;
  }

  // Fresh journal (no resume requested, file missing, or no committed
  // header survived).
  file_ = std::fopen(path_.c_str(), "wb");
  require(file_ != nullptr, ErrorKind::ConfigError,
          "cannot create journal " + path_);
  const std::string header = headerJson(spec).dump() + "\n";
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    std::fclose(file_);
    file_ = nullptr;
    common::raise(ErrorKind::ConfigError,
                  "cannot write journal header to " + path_);
  }
  std::fflush(file_);
  if (fsync_ == FsyncPolicy::EachRecord) fsync(fileno(file_));
}

void CampaignJournal::append(const ExperimentOutcome& outcome) {
  const std::string line = outcomeLine(outcome);
  std::lock_guard<std::mutex> lock(mutex_);
  require(file_ != nullptr, ErrorKind::ConfigError,
          "journal " + path_ + " is not open");
  // One fwrite per line + immediate flush: a crash between appends never
  // leaves more than one torn line, and open() skips torn lines.
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    common::raise(ErrorKind::ConfigError,
                  "cannot append to journal " + path_);
  }
  std::fflush(file_);
  if (fsync_ == FsyncPolicy::EachRecord) fsync(fileno(file_));
}

void CampaignJournal::rewrite(
    const CampaignSpec& spec,
    const std::map<std::uint64_t, ExperimentOutcome>& outcomes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  // Tmp + rename: a crash at any instant leaves either the previous journal
  // or the complete rewritten one on disk, never a mix of the two.
  const std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  require(out != nullptr, ErrorKind::ConfigError,
          "cannot create journal rewrite file " + tmp);
  std::string text = headerJson(spec).dump() + "\n";
  for (const auto& [index, outcome] : outcomes) {
    (void)index;
    text += outcomeLine(outcome);
  }
  bool ok = std::fwrite(text.data(), 1, text.size(), out) == text.size();
  ok = std::fflush(out) == 0 && ok;
  if (fsync_ == FsyncPolicy::EachRecord) fsync(fileno(out));
  ok = std::fclose(out) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    common::raise(ErrorKind::ConfigError,
                  "cannot rewrite journal " + path_);
  }
  completed_.clear();
  for (const auto& [index, outcome] : outcomes) completed_[index] = outcome;
  file_ = std::fopen(path_.c_str(), "ab");
  require(file_ != nullptr, ErrorKind::ConfigError,
          "cannot reopen journal " + path_ + " for append");
}

void CampaignJournal::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace fades::campaign
