#include "campaign/artifact.hpp"

#include <cstdint>

#include "obs/metrics.hpp"

namespace fades::campaign {

using obs::Json;

Json toJson(const DurationBand& band) {
  Json j = Json::object();
  j.set("label", Json(band.label));
  j.set("min_cycles", Json(band.minCycles));
  j.set("max_cycles", Json(band.maxCycles));
  return j;
}

Json toJson(const CampaignSpec& spec) {
  Json j = Json::object();
  j.set("model", Json(std::string(toString(spec.model))));
  j.set("targets", Json(std::string(toString(spec.targets))));
  j.set("unit", Json(static_cast<std::int64_t>(spec.unit)));
  j.set("band", toJson(spec.band));
  j.set("experiments", Json(static_cast<std::uint64_t>(spec.experiments)));
  j.set("seed", Json(static_cast<std::uint64_t>(spec.seed)));
  j.set("target_pool_size",
        Json(static_cast<std::uint64_t>(spec.targetPool.size())));
  return j;
}

Json toJson(const ExperimentRecord& record) {
  Json j = Json::object();
  j.set("target", Json(record.targetName));
  j.set("component", Json(record.component));
  j.set("inject_cycle", Json(record.injectCycle));
  j.set("duration_cycles", Json(record.durationCycles));
  j.set("outcome", Json(std::string(toString(record.outcome))));
  j.set("modeled_seconds", Json(record.modeledSeconds));
  // Attribution fields are always present (-1 = not available) so the
  // record schema is byte-stable whether or not a trace was attached.
  j.set("pc", Json(record.pc));
  j.set("opcode", Json(record.opcode));
  j.set("detect_cycle", Json(record.detectCycle));
  // Only synthesized (pruned) records carry the provenance field, so
  // artifacts from unpruned campaigns are unchanged byte for byte.
  if (record.prunedFrom >= 0) j.set("pruned_from", Json(record.prunedFrom));
  return j;
}

namespace {

bool fieldU64(const Json& j, const char* key, std::uint64_t& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isNumber()) return false;
  out = static_cast<std::uint64_t>(f->asInt());
  return true;
}

bool fieldI64(const Json& j, const char* key, std::int64_t& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isNumber()) return false;
  out = f->asInt();
  return true;
}

bool fieldDouble(const Json& j, const char* key, double& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isNumber()) return false;
  out = f->asNumber();
  return true;
}

bool fieldString(const Json& j, const char* key, std::string& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isString()) return false;
  out = f->asString();
  return true;
}

}  // namespace

bool recordFromJson(const Json& j, ExperimentRecord& out) {
  out = ExperimentRecord{};
  std::string outcome;
  if (!j.isObject() || !fieldString(j, "target", out.targetName) ||
      !fieldU64(j, "inject_cycle", out.injectCycle) ||
      !fieldDouble(j, "duration_cycles", out.durationCycles) ||
      !fieldString(j, "outcome", outcome) ||
      !fieldDouble(j, "modeled_seconds", out.modeledSeconds)) {
    return false;
  }
  fieldString(j, "component", out.component);
  fieldI64(j, "pc", out.pc);
  fieldI64(j, "opcode", out.opcode);
  fieldI64(j, "detect_cycle", out.detectCycle);
  fieldI64(j, "pruned_from", out.prunedFrom);
  return outcomeFromString(outcome, out.outcome);
}

Json toJson(const CostBreakdown& cost) {
  Json j = Json::object();
  j.set("config_seconds", Json(cost.configSeconds));
  j.set("workload_seconds", Json(cost.workloadSeconds));
  j.set("host_seconds", Json(cost.hostSeconds));
  j.set("total_seconds", Json(cost.totalSeconds()));
  j.set("bytes_to_device", Json(cost.bytesToDevice));
  j.set("bytes_from_device", Json(cost.bytesFromDevice));
  j.set("sessions", Json(cost.sessions));
  return j;
}

namespace {

// Everything about a result except the per-experiment records, which the
// JSONL form carries as individual rows.
Json summaryJson(const CampaignResult& result) {
  Json j = Json::object();
  j.set("spec", toJson(result.spec));
  Json outcomes = Json::object();
  outcomes.set("failures", Json(static_cast<std::uint64_t>(result.failures)));
  outcomes.set("latents", Json(static_cast<std::uint64_t>(result.latents)));
  outcomes.set("silents", Json(static_cast<std::uint64_t>(result.silents)));
  outcomes.set("failure_pct", Json(result.failurePct()));
  outcomes.set("latent_pct", Json(result.latentPct()));
  outcomes.set("silent_pct", Json(result.silentPct()));
  j.set("outcomes", outcomes);
  Json seconds = Json::object();
  seconds.set("count",
              Json(static_cast<std::uint64_t>(result.modeledSeconds.count())));
  seconds.set("mean", Json(result.modeledSeconds.mean()));
  seconds.set("min", Json(result.modeledSeconds.min()));
  seconds.set("max", Json(result.modeledSeconds.max()));
  seconds.set("stddev", Json(result.modeledSeconds.stddev()));
  seconds.set("sum", Json(result.modeledSeconds.sum()));
  j.set("modeled_seconds", seconds);
  j.set("cost", toJson(result.cost));
  // Always present (an empty array when nothing was quarantined) so a
  // fault-free artifact and a faulted-but-fully-recovered artifact are
  // byte-identical.
  Json quarantined = Json::array();
  for (const auto& q : result.quarantined) {
    Json entry = Json::object();
    entry.set("index", Json(q.index));
    entry.set("kind", Json(std::string(common::toString(q.kind))));
    entry.set("error", Json(q.error));
    entry.set("attempts", Json(static_cast<std::uint64_t>(q.attempts)));
    quarantined.push(std::move(entry));
  }
  j.set("quarantined", std::move(quarantined));
  return j;
}

}  // namespace

Json toJson(const CampaignResult& result) {
  Json j = summaryJson(result);
  if (!result.records.empty()) {
    Json records = Json::array();
    for (const auto& r : result.records) records.push(toJson(r));
    j.set("records", records);
  }
  return j;
}

obs::RunArtifact toRunArtifact(const CampaignResult& result,
                               const std::string& name, bool includeMetrics) {
  obs::RunArtifact artifact("campaign", name);
  artifact.setSpec(toJson(result.spec));
  for (const auto& r : result.records) artifact.addRecord(toJson(r));
  artifact.setSection("summary", summaryJson(result));
  artifact.setCost(toJson(result.cost));
  if (includeMetrics) {
    artifact.setMetrics(obs::Registry::global().snapshotJson());
  }
  return artifact;
}

}  // namespace fades::campaign
