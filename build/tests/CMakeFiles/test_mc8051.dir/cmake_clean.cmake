file(REMOVE_RECURSE
  "CMakeFiles/test_mc8051.dir/mc8051_test.cpp.o"
  "CMakeFiles/test_mc8051.dir/mc8051_test.cpp.o.d"
  "test_mc8051"
  "test_mc8051.pdb"
  "test_mc8051[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc8051.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
