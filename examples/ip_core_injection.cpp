// IP-core fault injection with restricted observability (paper Section 7.3).
//
// SoC integrators often receive an ALREADY IMPLEMENTED core: no HDL model,
// no unit map, no signal names - just a configuration bitstream and the pin
// interface. Model-based injection tools cannot touch such a core, but the
// run-time reconfiguration technique works at the implementation level:
// every used LUT and flip-flop is discoverable from the configuration
// memory itself, and faults are injected by rewriting it.
//
// This example treats the MC8051 implementation as a black box: targets are
// found by scanning the device configuration (not the location map), and
// only the pin-level outputs are observed.
#include <cstdio>
#include <vector>

#include "bits/config_port.hpp"
#include "common/rng.hpp"
#include "fpga/device.hpp"
#include "mc8051/core.hpp"
#include "mc8051/workloads.hpp"
#include "synth/implement.hpp"

using namespace fades;

int main() {
  // The "vendor" side: produce a configured core. The integrator only keeps
  // the bitstream and the pad binding of the output port pins.
  const auto workload = mc8051::bubblesort(6);
  const auto impl = synth::implement(mc8051::buildCore(workload.bytes),
                                     fpga::DeviceSpec::virtex1000Like());
  const fpga::Bitstream& bitstream = impl.bitstream;
  std::vector<unsigned> outputPads;
  for (const auto& p : impl.pads) {
    if (!p.isInput && (p.port == "p0" || p.port == "p1")) {
      outputPads.push_back(p.pad);
    }
  }

  // ---- Integrator's side starts here: bitstream + pads only --------------
  fpga::Device device(fpga::DeviceSpec::virtex1000Like());
  bits::ConfigPort port(device);
  port.writeFullBitstream(bitstream);

  // Fault location at the implementation level: scan the configuration for
  // used function generators. No netlist, no names.
  const auto& layout = device.layout();
  std::vector<fpga::CbCoord> usedLuts;
  for (std::uint16_t x = 0; x < device.spec().cols; ++x) {
    for (std::uint16_t y = 0; y < device.spec().rows; ++y) {
      const fpga::CbCoord cb{x, y};
      if (device.logicBit(layout.cbFieldBit(cb, fpga::CbField::LutUsed))) {
        usedLuts.push_back(cb);
      }
    }
  }
  std::printf("black-box scan found %zu used LUTs in the bitstream\n",
              usedLuts.size());

  // Golden run observing only the pins.
  auto observe = [&] {
    std::uint64_t w = 0;
    for (std::size_t i = 0; i < outputPads.size(); ++i) {
      if (device.padValue(outputPads[i])) w |= 1ULL << i;
    }
    return w;
  };
  std::vector<std::uint64_t> golden;
  const auto initial = device.captureState();
  for (std::uint64_t c = 0; c < workload.cycles; ++c) {
    golden.push_back(observe());
    device.step();
  }

  // Inject pulses into randomly chosen black-box LUTs.
  common::Rng rng(99);
  unsigned failures = 0, silents = 0;
  const unsigned experiments = 60;
  for (unsigned e = 0; e < experiments; ++e) {
    device.restoreState(initial);
    const auto cb = usedLuts[rng.below(usedLuts.size())];
    const auto injectAt = rng.below(workload.cycles);
    const auto duration = 1 + rng.below(10);

    bool diverged = false;
    std::uint16_t original = 0;
    for (std::uint64_t c = 0; c < workload.cycles; ++c) {
      if (c == injectAt) {
        original = port.getLutTable(cb);
        port.setLutTable(cb, static_cast<std::uint16_t>(~original));
        device.settle();
      }
      if (c == injectAt + duration) {
        port.setLutTable(cb, original);
        device.settle();
      }
      diverged |= (observe() != golden[c]);
      device.step();
    }
    if (injectAt + duration >= workload.cycles) {
      // The fault outlived the run: restore the configuration for the next
      // experiment (state is restored separately).
      port.setLutTable(cb, original);
      device.settle();
    }
    failures += diverged;
    silents += !diverged;
  }
  std::printf("pin-level classification over %u pulses: %u failures, %u "
              "silent-or-latent\n",
              experiments, failures, silents);
  std::printf("(with pin-only observability, latent faults are invisible - "
              "exactly the Section 7.3 trade-off)\n");
  return 0;
}
