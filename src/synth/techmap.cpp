#include "synth/techmap.hpp"

#include <algorithm>
#include <cassert>

#include "common/error.hpp"

namespace fades::synth {

using common::ErrorKind;
using common::require;
using netlist::GateOp;
using netlist::arity;

namespace {

struct Ctx {
  const Netlist& nl;
  std::vector<NetId> resolved;      // buffer-folded canonical net
  std::vector<std::int8_t> cval;    // constant value or -1
  std::vector<std::uint32_t> fanout;  // consumer count per canonical net
  std::vector<std::uint8_t> visible;  // must exist physically
  std::vector<std::int32_t> gateOf;   // canonical net -> driving gate or -1
};

/// Recursively evaluate the cone rooted at `net` under an assignment of the
/// leaf nets. `leafVal` maps canonical net index -> value for leaves.
bool evalCone(const Ctx& c, NetId net,
              const std::unordered_map<std::uint32_t, bool>& leafVal) {
  const NetId r = c.resolved[net.value];
  if (c.cval[r.value] >= 0) return c.cval[r.value] != 0;
  const auto it = leafVal.find(r.value);
  if (it != leafVal.end()) return it->second;
  const std::int32_t g = c.gateOf[r.value];
  require(g >= 0, ErrorKind::SynthesisError,
          "cone evaluation reached a non-gate non-leaf net");
  const auto& gate = c.nl.gates()[static_cast<std::size_t>(g)];
  const unsigned n = arity(gate.op);
  const bool a = n > 0 && evalCone(c, gate.in[0], leafVal);
  const bool b = n > 1 && evalCone(c, gate.in[1], leafVal);
  const bool s = n > 2 && evalCone(c, gate.in[2], leafVal);
  return netlist::evalGate(gate.op, a, b, s);
}

}  // namespace

MappedDesign techmap(const Netlist& nl) {
  const std::size_t nNets = nl.netCount();
  Ctx c{nl,
        std::vector<NetId>(nNets),
        std::vector<std::int8_t>(nNets, -1),
        std::vector<std::uint32_t>(nNets, 0),
        std::vector<std::uint8_t>(nNets, 0),
        std::vector<std::int32_t>(nNets, -1)};

  const auto topo = nl.topoOrder();

  // 1. Buffer folding + constant propagation, in topological order.
  for (std::uint32_t i = 0; i < nNets; ++i) c.resolved[i] = NetId{i};
  for (const auto gid : topo) {
    const auto& g = nl.gate(gid);
    const NetId out = g.out;
    switch (g.op) {
      case GateOp::Const0:
        c.cval[out.value] = 0;
        break;
      case GateOp::Const1:
        c.cval[out.value] = 1;
        break;
      case GateOp::Buf: {
        const NetId src = c.resolved[g.in[0].value];
        c.resolved[out.value] = src;
        c.cval[out.value] = c.cval[src.value];
        break;
      }
      default: {
        // Evaluate if all non-constant inputs are constant.
        const unsigned n = arity(g.op);
        bool allConst = true;
        bool v[3] = {false, false, false};
        for (unsigned k = 0; k < n; ++k) {
          const NetId src = c.resolved[g.in[k].value];
          if (c.cval[src.value] < 0) {
            allConst = false;
            break;
          }
          v[k] = c.cval[src.value] != 0;
        }
        if (allConst) {
          c.cval[out.value] =
              netlist::evalGate(g.op, v[0], v[1], v[2]) ? 1 : 0;
        }
        c.gateOf[out.value] = static_cast<std::int32_t>(gid.value);
        break;
      }
    }
  }
  // Resolve transitive buffer chains and propagate gate ownership.
  for (std::uint32_t i = 0; i < nNets; ++i) {
    NetId r = c.resolved[i];
    while (c.resolved[r.value] != r) r = c.resolved[r.value];
    c.resolved[i] = r;
  }

  // 2. Consumer counts and visibility over canonical nets.
  auto consume = [&](NetId n) {
    if (c.cval[c.resolved[n.value].value] < 0) {
      ++c.fanout[c.resolved[n.value].value];
    }
  };
  auto makeVisible = [&](NetId n) { c.visible[c.resolved[n.value].value] = 1; };
  for (const auto& g : nl.gates()) {
    if (g.op == GateOp::Buf || g.op == GateOp::Const0 ||
        g.op == GateOp::Const1) {
      continue;
    }
    for (unsigned k = 0; k < arity(g.op); ++k) consume(g.in[k]);
  }
  for (const auto& f : nl.flops()) {
    consume(f.d);
    makeVisible(f.d);
  }
  for (const auto& r : nl.rams()) {
    for (NetId n : r.addr) {
      consume(n);
      makeVisible(n);
    }
    for (NetId n : r.dataIn) {
      consume(n);
      makeVisible(n);
    }
    if (r.writeEnable.valid()) {
      consume(r.writeEnable);
      makeVisible(r.writeEnable);
    }
  }
  for (const auto& p : nl.outputs()) {
    for (NetId n : p.nets) {
      consume(n);
      makeVisible(n);
    }
  }

  // 3. Cone leaves per gate (greedy fanout-free merging), topo order.
  //    A fanin is absorbed when it is gate-driven, single-fanout, not
  //    visible, and the merged leaf set still fits in 4 inputs.
  std::vector<std::vector<NetId>> leavesOf(nl.gateCount());
  auto isGateDriven = [&](NetId r) { return c.gateOf[r.value] >= 0; };
  for (const auto gid : topo) {
    const auto& g = nl.gate(gid);
    if (g.op == GateOp::Buf || g.op == GateOp::Const0 ||
        g.op == GateOp::Const1) {
      continue;
    }
    // Base leaf set: the gate's own (non-constant) fanins.
    std::vector<NetId> leaves;
    for (unsigned k = 0; k < arity(g.op); ++k) {
      const NetId r = c.resolved[g.in[k].value];
      if (c.cval[r.value] >= 0) continue;  // constants fold into the table
      if (std::find(leaves.begin(), leaves.end(), r) == leaves.end()) {
        leaves.push_back(r);
      }
    }
    // Replacement-style merging: absorb a child cone only when the full
    // resulting leaf set (child leaves plus all remaining fanins) fits.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t k = 0; k < leaves.size(); ++k) {
        const NetId r = leaves[k];
        if (!isGateDriven(r) || c.fanout[r.value] != 1 ||
            c.visible[r.value]) {
          continue;
        }
        const auto& child =
            leavesOf[static_cast<std::size_t>(c.gateOf[r.value])];
        std::vector<NetId> candidate;
        for (std::size_t j = 0; j < leaves.size(); ++j) {
          if (j != k) candidate.push_back(leaves[j]);
        }
        for (NetId l : child) {
          if (std::find(candidate.begin(), candidate.end(), l) ==
              candidate.end()) {
            candidate.push_back(l);
          }
        }
        if (candidate.size() <= 4) {
          leaves = std::move(candidate);
          changed = true;
          break;
        }
      }
    }
    require(leaves.size() <= 4, ErrorKind::SynthesisError,
            "cone exceeds 4 leaves");
    leavesOf[gid.value] = std::move(leaves);
  }

  // 4. Select LUT roots: gates producing visible nets, plus transitively
  //    every gate appearing as a leaf of a selected root's cone.
  std::vector<std::uint8_t> isRoot(nl.gateCount(), 0);
  std::vector<std::uint32_t> work;
  auto addRoot = [&](std::uint32_t g) {
    if (!isRoot[g]) {
      isRoot[g] = 1;
      work.push_back(g);
    }
  };
  for (std::uint32_t i = 0; i < nNets; ++i) {
    if (c.visible[i] && c.resolved[i].value == i && c.gateOf[i] >= 0 &&
        c.cval[i] < 0) {
      addRoot(static_cast<std::uint32_t>(c.gateOf[i]));
    }
  }
  // Multi-fanout internal nets also need physical LUTs when consumed by
  // another cone as a leaf.
  while (!work.empty()) {
    const std::uint32_t g = work.back();
    work.pop_back();
    for (NetId leaf : leavesOf[g]) {
      if (isGateDriven(leaf)) {
        addRoot(static_cast<std::uint32_t>(c.gateOf[leaf.value]));
      }
    }
  }

  // 5. Emit LUTs with computed truth tables.
  MappedDesign out;
  out.resolved = c.resolved;
  out.constVal = c.cval;
  out.lutOfNet.assign(nNets, 0);
  for (const auto gid : topo) {
    if (!isRoot[gid.value]) continue;
    const auto& g = nl.gate(gid);
    MappedLut lut;
    lut.unit = g.unit;
    lut.out = g.out;
    const auto& leaves = leavesOf[gid.value];
    lut.leafCount = static_cast<unsigned>(leaves.size());
    for (unsigned k = 0; k < lut.leafCount; ++k) lut.leaves[k] = leaves[k];
    for (unsigned idx = 0; idx < 16; ++idx) {
      std::unordered_map<std::uint32_t, bool> leafVal;
      for (unsigned k = 0; k < lut.leafCount; ++k) {
        leafVal[leaves[k].value] = (idx >> k) & 1u;
      }
      if (evalCone(c, g.out, leafVal)) {
        lut.table |= static_cast<std::uint16_t>(1u << idx);
      }
    }
    out.lutOfNet[g.out.value] = static_cast<std::uint32_t>(out.luts.size()) + 1;
    out.luts.push_back(lut);
  }
  return out;
}

bool evalMappedLut(const MappedLut& lut, const std::vector<bool>& leafValues) {
  unsigned idx = 0;
  for (unsigned k = 0; k < lut.leafCount; ++k) {
    if (leafValues[k]) idx |= 1u << k;
  }
  return (lut.table >> idx) & 1u;
}

}  // namespace fades::synth
