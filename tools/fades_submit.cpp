// Campaign submission and retrieval client.
//
// Talks fades.wire/1 to a running coordinator:
//   fades_submit --port P submit [job args]   register a campaign, print its
//                                             fingerprint
//   fades_submit --port P status [FP]         one status line (or campaign
//                                             list)
//   fades_submit --port P watch FP            poll status until complete
//   fades_submit --port P fetch FP [--out F]  fetch the merged artifact
//   fades_submit --store DIR fetch FP [--out F]
//                                             offline fetch straight from
//                                             the content-addressed store
//                                             (no coordinator needed)
//
// Job args mirror campaign_8051: [--tool fades|vfit|autonomous]
// [--engine event|compiled] [--workload bubblesort6|demo] [--link-faults R]
// [--no-records] [--name NAME] [model] [targets] [unit] [faults] [band]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "netlist/netlist.hpp"
#include "obs/artifact.hpp"
#include "obs/json.hpp"
#include "service/jobspec.hpp"
#include "service/wire.hpp"

using namespace fades;
using obs::Json;

namespace {

[[noreturn]] void usageError(const std::string& message) {
  std::fprintf(
      stderr,
      "error: %s\n"
      "usage: fades_submit --port P submit [job args]\n"
      "       fades_submit --port P status [FP]\n"
      "       fades_submit --port P watch FP\n"
      "       fades_submit --port P fetch FP [--out FILE]\n"
      "       fades_submit --store DIR fetch FP [--out FILE]\n"
      "job args: [--tool fades|vfit|autonomous] [--engine event|compiled]\n"
      "          [--workload bubblesort6|demo] [--link-faults R]\n"
      "          [--no-records] [--name NAME]\n"
      "          [model] [targets] [unit] [faults] [band]\n",
      message.c_str());
  std::exit(2);
}

service::Socket dial(const std::string& host, std::uint16_t port) {
  service::Socket sock = service::connectTo(host, port, /*timeoutMs=*/5000);
  Json hello = Json::object();
  hello.set("type", Json(std::string("hello")));
  hello.set("schema", Json(std::string(service::kWireSchema)));
  hello.set("role", Json(std::string("client")));
  service::sendMessage(sock, hello);
  const auto welcome = service::recvMessage(sock, 5000);
  common::require(welcome.has_value(), common::ErrorKind::LinkError,
                  "coordinator closed during handshake");
  return sock;
}

Json rpc(const service::Socket& sock, const Json& request) {
  service::sendMessage(sock, request);
  const auto reply = service::recvMessage(sock, /*timeoutMs=*/30000);
  common::require(reply.has_value(), common::ErrorKind::LinkError,
                  "coordinator closed the connection");
  return *reply;
}

std::string stringField(const Json& j, const char* key) {
  const Json* f = j.find(key);
  return f != nullptr && f->isString() ? f->asString() : std::string();
}

std::uint64_t numberField(const Json& j, const char* key) {
  const Json* f = j.find(key);
  return f != nullptr && f->isNumber() ? static_cast<std::uint64_t>(f->asInt())
                                       : 0;
}

/// Parse campaign_8051-style job arguments into a JobSpec.
service::JobSpec parseJob(const std::vector<std::string>& args) {
  service::JobSpec job;
  job.spec.seed = 2006;
  job.spec.experiments = 200;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usageError(a + " needs a value");
      return args[++i];
    };
    if (a == "--tool") {
      job.tool = value();
    } else if (a == "--engine") {
      job.engine = value();
    } else if (a == "--workload") {
      job.workload = value();
    } else if (a == "--link-faults") {
      job.linkFaultRate = std::strtod(value().c_str(), nullptr);
    } else if (a == "--no-records") {
      job.keepRecords = false;
    } else if (a == "--name") {
      job.name = value();
    } else if (!a.empty() && a[0] == '-') {
      usageError("unknown job flag '" + a + "'");
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() > 5) usageError("too many job arguments");
  auto arg = [&](std::size_t i, const char* def) {
    return i < positional.size() ? positional[i] : std::string(def);
  };
  const std::string model = arg(0, "bitflip");
  const std::string targets = arg(1, "ff");
  const std::string unit = arg(2, "any");
  const std::string faults = arg(3, "200");
  const std::string band = arg(4, "short");
  job.spec.model = model == "pulse"   ? campaign::FaultModel::Pulse
                   : model == "delay" ? campaign::FaultModel::Delay
                   : model == "indet" ? campaign::FaultModel::Indetermination
                                      : campaign::FaultModel::BitFlip;
  job.spec.targets =
      targets == "memory"     ? campaign::TargetClass::MemoryBlockBit
      : targets == "lut"      ? campaign::TargetClass::CombinationalLut
      : targets == "seqline"  ? campaign::TargetClass::SequentialLine
      : targets == "combline" ? campaign::TargetClass::CombinationalLine
                              : campaign::TargetClass::SequentialFF;
  job.spec.unit =
      static_cast<int>(unit == "registers" ? netlist::Unit::Registers
                       : unit == "ram"     ? netlist::Unit::Ram
                       : unit == "alu"     ? netlist::Unit::Alu
                       : unit == "mem"     ? netlist::Unit::MemCtrl
                       : unit == "fsm"     ? netlist::Unit::Fsm
                                           : netlist::Unit::None);
  job.spec.band = band == "sub"    ? campaign::DurationBand::subCycle()
                  : band == "long" ? campaign::DurationBand::longBand()
                                   : campaign::DurationBand::shortBand();
  job.spec.experiments =
      static_cast<unsigned>(std::strtoul(faults.c_str(), nullptr, 10));
  if (job.spec.experiments == 0) usageError("faults must be positive");
  if (job.name.empty()) job.name = model + "_" + targets + "_" + unit;
  return job;
}

void printStatus(const Json& report) {
  const std::string fp = stringField(report, "fingerprint");
  if (!fp.empty()) {
    const Json* complete = report.find("complete");
    std::printf("%s  %llu/%llu%s", fp.c_str(),
                static_cast<unsigned long long>(numberField(report, "done")),
                static_cast<unsigned long long>(numberField(report, "total")),
                complete != nullptr && complete->asBool() ? "  complete"
                                                          : "");
    const std::string object = stringField(report, "object");
    if (!object.empty()) std::printf("  object %s", object.c_str());
    std::printf("\n");
  } else if (const Json* list = report.find("campaigns")) {
    for (const auto& name : list->items()) {
      std::printf("%s\n", name.asString().c_str());
    }
  }
  std::printf(
      "workers %llu active / %llu quarantined; leases %llu granted, "
      "%llu expired, %llu requeued; %llu bytes streamed\n",
      static_cast<unsigned long long>(numberField(report, "workers_active")),
      static_cast<unsigned long long>(
          numberField(report, "workers_quarantined")),
      static_cast<unsigned long long>(numberField(report, "leases_granted")),
      static_cast<unsigned long long>(numberField(report, "leases_expired")),
      static_cast<unsigned long long>(numberField(report, "leases_requeued")),
      static_cast<unsigned long long>(numberField(report, "bytes_streamed")));
}

int fetchOffline(const std::string& storeDir, const std::string& fp,
                 const std::string& outPath) {
  std::ifstream meta(storeDir + "/campaigns/" + fp + ".json");
  std::stringstream metaText;
  metaText << meta.rdbuf();
  const auto parsed = Json::parse(metaText.str());
  if (!parsed) {
    std::fprintf(stderr, "error: no readable campaign meta for %s in %s\n",
                 fp.c_str(), storeDir.c_str());
    return 1;
  }
  const std::string object = stringField(*parsed, "object");
  if (object.empty()) {
    std::fprintf(stderr, "error: campaign %s is not complete\n", fp.c_str());
    return 1;
  }
  std::ifstream in(storeDir + "/objects/" + object + ".json",
                   std::ios::binary);
  std::stringstream content;
  content << in.rdbuf();
  if (content.str().empty()) {
    std::fprintf(stderr, "error: artifact object %s is missing\n",
                 object.c_str());
    return 1;
  }
  if (outPath.empty()) {
    std::fputs(content.str().c_str(), stdout);
  } else {
    obs::writeFile(outPath, content.str());
    std::printf("wrote %s (object %s)\n", outPath.c_str(), object.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string storeDir;
  std::string outPath;
  std::string command;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usageError(a + " needs a value");
      return argv[++i];
    };
    if (a == "--port") {
      port = static_cast<std::uint16_t>(std::strtoul(value(), nullptr, 10));
    } else if (a == "--host") {
      host = value();
    } else if (a == "--store") {
      storeDir = value();
    } else if (a == "--out") {
      outPath = value();
    } else if (command.empty() && !a.empty() && a[0] != '-') {
      command = a;
    } else {
      rest.push_back(a);
    }
  }
  if (command.empty()) usageError("missing command");

  try {
    if (command == "fetch" && !storeDir.empty()) {
      if (rest.empty()) usageError("fetch needs a fingerprint");
      return fetchOffline(storeDir, rest[0], outPath);
    }
    if (port == 0) usageError("--port is required (or --store for fetch)");

    if (command == "submit") {
      const service::JobSpec job = parseJob(rest);
      service::validate(job);
      const service::Socket sock = dial(host, port);
      Json msg = Json::object();
      msg.set("type", Json(std::string("submit")));
      msg.set("job", service::toJson(job));
      const Json reply = rpc(sock, msg);
      const std::string fp = stringField(reply, "fingerprint");
      if (fp.empty()) {
        std::fprintf(stderr, "error: %s\n",
                     stringField(reply, "error").c_str());
        return 1;
      }
      std::printf("%s\n", fp.c_str());
      return 0;
    }
    if (command == "status" || command == "watch") {
      const service::Socket sock = dial(host, port);
      Json msg = Json::object();
      msg.set("type", Json(std::string("status")));
      if (!rest.empty()) msg.set("fingerprint", Json(rest[0]));
      if (command == "status") {
        const Json reply = rpc(sock, msg);
        if (stringField(reply, "type") == "error") {
          std::fprintf(stderr, "error: %s\n",
                       stringField(reply, "error").c_str());
          return 1;
        }
        printStatus(reply);
        return 0;
      }
      if (rest.empty()) usageError("watch needs a fingerprint");
      for (;;) {
        const Json reply = rpc(sock, msg);
        if (stringField(reply, "type") == "error") {
          std::fprintf(stderr, "error: %s\n",
                       stringField(reply, "error").c_str());
          return 1;
        }
        printStatus(reply);
        const Json* complete = reply.find("complete");
        if (complete != nullptr && complete->asBool()) return 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
      }
    }
    if (command == "fetch") {
      if (rest.empty()) usageError("fetch needs a fingerprint");
      const service::Socket sock = dial(host, port);
      Json msg = Json::object();
      msg.set("type", Json(std::string("fetch")));
      msg.set("fingerprint", Json(rest[0]));
      const Json reply = rpc(sock, msg);
      if (stringField(reply, "type") != "artifact") {
        std::fprintf(stderr, "error: %s\n",
                     stringField(reply, "error").c_str());
        return 1;
      }
      const std::string content = stringField(reply, "content");
      if (outPath.empty()) {
        std::fputs(content.c_str(), stdout);
      } else {
        obs::writeFile(outPath, content);
        std::printf("wrote %s (object %s)\n", outPath.c_str(),
                    stringField(reply, "object").c_str());
      }
      return 0;
    }
    usageError("unknown command '" + command + "'");
  } catch (const common::FadesError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
