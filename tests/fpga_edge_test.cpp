// Edge-case and error-path tests for the FPGA substrate: partial frames,
// invalid addresses, boundary pass transistors, spec validation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fpga/device.hpp"
#include "fpga/layout.hpp"

namespace fades::fpga {
namespace {

using common::ErrorKind;
using common::FadesError;

TEST(LayoutEdge, LastMinorOfColumnMayBePartial) {
  ConfigLayout l(DeviceSpec::small());
  for (unsigned col = 0; col <= l.spec().cols; ++col) {
    const unsigned minors = l.minorsOfColumn(col);
    ASSERT_GT(minors, 0u);
    unsigned total = 0;
    for (unsigned m = 0; m < minors; ++m) {
      const unsigned bits =
          l.logicFrameBitCount(FrameAddr{Plane::Logic, col, m});
      ASSERT_GT(bits, 0u);
      ASSERT_LE(bits, l.frameBits());
      if (m + 1 < minors) EXPECT_EQ(bits, l.frameBits());
      total += bits;
    }
    // Frames tile the column exactly.
    const std::size_t colBits =
        l.logicFrameFirstBit(FrameAddr{Plane::Logic, col, minors - 1}) +
        l.logicFrameBitCount(FrameAddr{Plane::Logic, col, minors - 1}) -
        l.logicFrameFirstBit(FrameAddr{Plane::Logic, col, 0});
    EXPECT_EQ(total, colBits);
  }
}

TEST(LayoutEdge, EveryLogicBitMapsIntoItsFrame) {
  ConfigLayout l(DeviceSpec::small());
  // Walk a sample of addresses including the very last bit.
  for (std::size_t bit :
       {std::size_t{0}, l.logicPlaneBits() / 3, l.logicPlaneBits() / 2,
        l.logicPlaneBits() - 1}) {
    const FrameAddr f = l.frameOfLogicBit(bit);
    const std::size_t first = l.logicFrameFirstBit(f);
    EXPECT_LE(first, bit);
    EXPECT_LT(bit - first, l.logicFrameBitCount(f));
  }
  EXPECT_THROW(l.frameOfLogicBit(l.logicPlaneBits()), FadesError);
}

TEST(LayoutEdge, SpecValidationRejectsBadGeometry) {
  DeviceSpec bad = DeviceSpec::small();
  bad.cols = 13;  // not a multiple of memBlocks (2)
  EXPECT_THROW(ConfigLayout{bad}, FadesError);
  DeviceSpec tiny = DeviceSpec::small();
  tiny.rows = 1;
  EXPECT_THROW(ConfigLayout{tiny}, FadesError);
  DeviceSpec crowded = DeviceSpec::small();
  crowded.memBlocks = 6;  // 12 cols / 6 = 2 columns per block: too few
  EXPECT_THROW(ConfigLayout{crowded}, FadesError);
}

TEST(DeviceEdge, BoundaryPmSwitchesAreInert) {
  Device dev(DeviceSpec::small());
  const auto& l = dev.layout();
  // PM(0, 0) has no west or south segment: WE / NS / WS must decode as
  // non-transistors (setting them changes nothing electrically).
  for (PmSwitch sw : {PmSwitch::WE, PmSwitch::NS, PmSwitch::WS}) {
    const auto m = dev.decodeLogicBit(l.pmSwitchBit(PmCoord{0, 0}, 0, sw));
    EXPECT_FALSE(m.isTransistor);
  }
  // EN at PM(0,0) connects HSeg(0,0) and VSeg(0,0): real.
  const auto en =
      dev.decodeLogicBit(l.pmSwitchBit(PmCoord{0, 0}, 0, PmSwitch::EN));
  EXPECT_TRUE(en.isTransistor);
}

TEST(DeviceEdge, FrameWriteRejectsShortPayload) {
  Device dev(DeviceSpec::small());
  std::vector<std::uint8_t> tooShort(3, 0);
  EXPECT_THROW(dev.writeLogicFrame(FrameAddr{Plane::Logic, 0, 0}, tooShort),
               FadesError);
}

TEST(DeviceEdge, BramFrameAddressValidation) {
  Device dev(DeviceSpec::small());
  EXPECT_THROW(dev.readBramFrame(99, 0), FadesError);
  EXPECT_THROW(dev.readBramFrame(0, 999), FadesError);
  std::vector<std::uint8_t> frame(dev.spec().frameBytes, 0xFF);
  EXPECT_THROW(dev.writeBramFrame(99, 0, frame), FadesError);
  EXPECT_NO_THROW(dev.writeBramFrame(0, 0, frame));
  EXPECT_TRUE(dev.bramBit(0));
}

TEST(DeviceEdge, CaptureFrameColumnValidation) {
  Device dev(DeviceSpec::small());
  EXPECT_THROW(dev.readCaptureFrame(dev.spec().cols), FadesError);
}

TEST(DeviceEdge, StateRestoreShapeChecked) {
  Device a(DeviceSpec::small());
  Device b(DeviceSpec::medium());
  const auto state = b.captureState();
  EXPECT_THROW(a.restoreState(state), FadesError);
}

TEST(DeviceEdge, BitstreamSizeChecked) {
  Device dev(DeviceSpec::small());
  Bitstream wrong{common::BitVector(10), common::BitVector(10)};
  EXPECT_THROW(dev.writeFullBitstream(wrong), FadesError);
}

TEST(DeviceEdge, PadIndexValidation) {
  Device dev(DeviceSpec::small());
  EXPECT_THROW(dev.setPadInput(dev.spec().padCount(), true), FadesError);
}

TEST(DeviceEdge, UnconnectedFabricReadsZero) {
  // An output pad connected to a floating (driverless) segment reads 0.
  Device dev(DeviceSpec::small());
  dev.setLogicBit(dev.layout().padFieldBit(3, PadField::Used), true);
  dev.setLogicBit(dev.layout().padFieldBit(3, PadField::IsOutput), true);
  dev.setLogicBit(dev.layout().padConnBit(3, false, 2), true);
  dev.settle();
  EXPECT_FALSE(dev.padValue(3));
}

}  // namespace
}  // namespace fades::fpga
