// Placement: assign packed cells (LUT/FF pairs) to configurable blocks.
//
// Connectivity-ordered initial placement followed by greedy pairwise-swap
// refinement on half-perimeter wirelength. Pads and memory-block pins are
// fixed terminals pulling their logic toward the device edges.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fpga/spec.hpp"

namespace fades::synth {

struct PlacerNet {
  /// Cells on this net (indices into the cell array).
  std::vector<std::uint32_t> cells;
  /// Fixed terminal positions (pads, memory-block pins), in tile units.
  std::vector<std::pair<double, double>> fixed;
};

struct PlacerResult {
  std::vector<fpga::CbCoord> cellSite;  // per cell
  double finalWirelength = 0.0;
};

/// Place `cellCount` cells on the device grid. Throws CapacityError when the
/// design does not fit.
PlacerResult place(const fpga::DeviceSpec& spec, std::uint32_t cellCount,
                   const std::vector<PlacerNet>& nets, common::Rng& rng,
                   unsigned swapPassMultiplier = 24);

}  // namespace fades::synth
