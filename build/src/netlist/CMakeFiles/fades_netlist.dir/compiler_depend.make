# Empty compiler generated dependencies file for fades_netlist.
# This may be replaced when dependencies are built.
