// Instruction-set definition for the MC8051 subset.
//
// The paper's system under test is an Intel 8051 IP core running Bubblesort.
// We implement a faithful subset of the MCS-51 ISA - real opcode encodings,
// real flag semantics (CY/AC/OV/P), banked R0-R7 registers living in internal
// RAM, SFR address space - rich enough for non-trivial workloads (sorting,
// checksums, subroutine calls) while staying synthesizable onto the generic
// FPGA. This header is shared by the assembler, the instruction-set
// simulator and (conceptually) the RTL decoder.
#pragma once

#include <cstdint>

namespace fades::mc8051 {

// --- special function register addresses (direct address space >= 0x80) ---
inline constexpr std::uint8_t SFR_P0 = 0x80;
inline constexpr std::uint8_t SFR_SP = 0x81;
inline constexpr std::uint8_t SFR_DPL = 0x82;
inline constexpr std::uint8_t SFR_DPH = 0x83;
inline constexpr std::uint8_t SFR_P1 = 0x90;
inline constexpr std::uint8_t SFR_PSW = 0xD0;
inline constexpr std::uint8_t SFR_ACC = 0xE0;
inline constexpr std::uint8_t SFR_B = 0xF0;

// --- PSW bit positions ------------------------------------------------------
inline constexpr unsigned PSW_P = 0;    // parity of ACC (computed)
inline constexpr unsigned PSW_OV = 2;   // overflow
inline constexpr unsigned PSW_RS0 = 3;  // register bank select
inline constexpr unsigned PSW_RS1 = 4;
inline constexpr unsigned PSW_F0 = 5;   // general-purpose flag
inline constexpr unsigned PSW_AC = 6;   // auxiliary carry
inline constexpr unsigned PSW_CY = 7;   // carry

// --- opcodes (MCS-51 encodings; +n forms add the register index) ----------
enum Op : std::uint8_t {
  OP_NOP = 0x00,
  OP_LJMP = 0x02,
  OP_RR_A = 0x03,
  OP_INC_A = 0x04,
  OP_INC_DIR = 0x05,
  OP_INC_IND = 0x06,  // +i
  OP_INC_RN = 0x08,   // +n
  OP_LCALL = 0x12,
  OP_RRC_A = 0x13,
  OP_DEC_A = 0x14,
  OP_DEC_DIR = 0x15,
  OP_DEC_IND = 0x16,  // +i
  OP_DEC_RN = 0x18,   // +n
  OP_RET = 0x22,
  OP_RL_A = 0x23,
  OP_ADD_IMM = 0x24,
  OP_ADD_DIR = 0x25,
  OP_ADD_IND = 0x26,  // +i
  OP_ADD_RN = 0x28,   // +n
  OP_RLC_A = 0x33,
  OP_ADDC_IMM = 0x34,
  OP_ADDC_DIR = 0x35,
  OP_ADDC_IND = 0x36,  // +i
  OP_ADDC_RN = 0x38,   // +n
  OP_JC = 0x40,
  OP_ORL_A_IMM = 0x44,
  OP_ORL_A_DIR = 0x45,
  OP_ORL_A_RN = 0x48,  // +n
  OP_JNC = 0x50,
  OP_DIV_AB = 0x84,
  OP_MUL_AB = 0xA4,
  OP_ANL_A_IMM = 0x54,
  OP_ANL_A_DIR = 0x55,
  OP_ANL_A_RN = 0x58,  // +n
  OP_JZ = 0x60,
  OP_XRL_A_IMM = 0x64,
  OP_XRL_A_DIR = 0x65,
  OP_XRL_A_RN = 0x68,  // +n
  OP_JNZ = 0x70,
  OP_MOV_A_IMM = 0x74,
  OP_MOV_DIR_IMM = 0x75,
  OP_MOV_IND_IMM = 0x76,  // +i
  OP_MOV_RN_IMM = 0x78,   // +n
  OP_SJMP = 0x80,
  OP_MOV_DIR_DIR = 0x85,  // operands: src, dst (MCS-51 quirk)
  OP_MOV_DIR_RN = 0x88,   // +n
  OP_SUBB_IMM = 0x94,
  OP_SUBB_DIR = 0x95,
  OP_SUBB_IND = 0x96,  // +i
  OP_SUBB_RN = 0x98,   // +n
  OP_MOV_RN_DIR = 0xA8,  // +n
  OP_CPL_C = 0xB3,
  OP_CJNE_A_IMM = 0xB4,
  OP_CJNE_A_DIR = 0xB5,
  OP_CJNE_IND_IMM = 0xB6,  // +i
  OP_CJNE_RN_IMM = 0xB8,   // +n
  OP_PUSH = 0xC0,
  OP_CLR_C = 0xC3,
  OP_XCH_A_DIR = 0xC5,
  OP_XCH_A_RN = 0xC8,  // +n
  OP_POP = 0xD0,
  OP_SETB_C = 0xD3,
  OP_DJNZ_DIR = 0xD5,
  OP_DJNZ_RN = 0xD8,  // +n
  OP_CLR_A = 0xE4,
  OP_MOV_A_DIR = 0xE5,
  OP_MOV_A_IND = 0xE6,  // +i
  OP_MOV_A_RN = 0xE8,   // +n
  OP_CPL_A = 0xF4,
  OP_MOV_DIR_A = 0xF5,
  OP_MOV_IND_A = 0xF6,  // +i
  OP_MOV_RN_A = 0xF8,   // +n
};

/// Instruction length in bytes (1..3); 0 marks an unimplemented opcode.
unsigned instructionLength(std::uint8_t opcode);

/// True when the opcode belongs to the implemented subset.
inline bool isImplemented(std::uint8_t opcode) {
  return instructionLength(opcode) != 0;
}

/// Mnemonic form of an opcode ("MOV A,Rn", "DJNZ dir,rel", ...). Register
/// and indirect encodings collapse onto their family name, which is exactly
/// the granularity the per-instruction vulnerability tables aggregate at.
/// Returns "?" for opcodes outside the implemented subset.
const char* opcodeName(std::uint8_t opcode);

}  // namespace fades::mc8051
