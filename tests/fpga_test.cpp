#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "fpga/device.hpp"
#include "fpga/layout.hpp"
#include "fpga/spec.hpp"

namespace fades::fpga {
namespace {

using common::FadesError;

// ------------------------------------------------------------- layout -----

TEST(Layout, RecordSizes) {
  ConfigLayout l(DeviceSpec::small());  // tracks = 12
  EXPECT_EQ(l.cbRecordBits(), 24u + 14u * 12u);
  EXPECT_EQ(l.pmRecordBits(), 6u * 12u);
  EXPECT_EQ(l.padRecordBits(), 8u + 2u * 12u);
  EXPECT_EQ(l.bramRecordBits(), 8u + 45u * 24u);
}

TEST(Layout, Virtex1000LikeScale) {
  const auto spec = DeviceSpec::virtex1000Like();
  ConfigLayout l(spec);
  EXPECT_EQ(spec.lutCount(), 24576u);  // paper Section 7.1
  EXPECT_EQ(spec.ffCount(), 24576u);
  // Full configuration in the hundreds of kilobytes to a few megabytes,
  // like a real Virtex-1000 (~750 KB).
  EXPECT_GT(l.totalConfigBytes(), 400u * 1024u);
  EXPECT_LT(l.totalConfigBytes(), 4u * 1024u * 1024u);
}

TEST(Layout, AddressesAreUniqueAcrossResourceKinds) {
  ConfigLayout l(DeviceSpec::small());
  std::set<std::size_t> seen;
  auto check = [&](std::size_t addr) {
    EXPECT_TRUE(seen.insert(addr).second) << "duplicate address " << addr;
    EXPECT_LT(addr, l.logicPlaneBits());
  };
  // Sample a spread of resources.
  for (std::uint16_t x : {0, 3, 11}) {
    for (std::uint16_t y : {0, 5, 11}) {
      CbCoord cb{x, y};
      for (unsigned i = 0; i < 16; ++i) check(l.cbLutBit(cb, i));
      check(l.cbFieldBit(cb, CbField::InvLsr));
      check(l.cbFieldBit(cb, CbField::SrMode));
      for (unsigned t : {0u, 11u}) {
        check(l.cbInConnBit(cb, CbInPin::I0, false, t));
        check(l.cbInConnBit(cb, CbInPin::Byp, true, t));
        check(l.cbOutConnBit(cb, CbOutPin::Lut, false, t));
        check(l.cbOutConnBit(cb, CbOutPin::Ff, true, t));
      }
    }
  }
  for (std::uint16_t x : {0, 6, 12}) {
    for (std::uint16_t y : {0, 6, 12}) {
      check(l.pmSwitchBit(PmCoord{x, y}, 3, PmSwitch::WE));
      check(l.pmSwitchBit(PmCoord{x, y}, 7, PmSwitch::EN));
    }
  }
  for (unsigned p : {0u, 5u, 23u}) {
    check(l.padFieldBit(p, PadField::Used));
    check(l.padConnBit(p, false, 2));
    check(l.padConnBit(p, true, 2));
  }
  for (unsigned b : {0u, 1u}) {
    check(l.bramFieldBit(b, BramField::Used));
    check(l.bramPinConnBit(b, 0, false, 0));
    check(l.bramPinConnBit(b, 44, true, 11));
  }
}

TEST(Layout, DecodeInvertsAccessors) {
  ConfigLayout l(DeviceSpec::small());
  {
    const auto d = l.decode(l.cbLutBit(CbCoord{4, 7}, 9));
    EXPECT_EQ(d.region, ConfigLayout::Decoded::Region::Cb);
    EXPECT_EQ(d.cb, (CbCoord{4, 7}));
    EXPECT_EQ(d.bitInRecord, 9u);
  }
  {
    const auto d = l.decode(l.pmSwitchBit(PmCoord{12, 3}, 5, PmSwitch::WS));
    EXPECT_EQ(d.region, ConfigLayout::Decoded::Region::Pm);
    EXPECT_EQ(d.pm, (PmCoord{12, 3}));
    EXPECT_EQ(d.bitInRecord, 5u * 6u + 3u);
  }
  {
    const auto d = l.decode(l.padFieldBit(15, PadField::IsOutput));
    EXPECT_EQ(d.region, ConfigLayout::Decoded::Region::Pad);
    EXPECT_EQ(d.pad, 15u);
  }
  {
    const auto d = l.decode(l.bramPinConnBit(1, 20, true, 3));
    EXPECT_EQ(d.region, ConfigLayout::Decoded::Region::Bram);
    EXPECT_EQ(d.block, 1u);
  }
}

TEST(Layout, FrameMappingRoundTrip) {
  ConfigLayout l(DeviceSpec::small());
  for (std::size_t bit :
       {std::size_t{0}, l.cbLutBit(CbCoord{5, 5}, 0),
        l.pmSwitchBit(PmCoord{12, 12}, 11, PmSwitch::ES),
        l.logicPlaneBits() - 1}) {
    const FrameAddr f = l.frameOfLogicBit(bit);
    const std::size_t first = l.logicFrameFirstBit(f);
    EXPECT_LE(first, bit);
    EXPECT_LT(bit - first, l.logicFrameBitCount(f));
  }
}

TEST(Layout, BramFrameMapping) {
  ConfigLayout l(DeviceSpec::small());  // frameBytes=64 -> 512 bits
  const auto f = l.frameOfBramBit(1, 600);
  EXPECT_EQ(f.plane, Plane::BramContent);
  EXPECT_EQ(f.major, 1u);
  EXPECT_EQ(f.minor, 1u);
  EXPECT_EQ(l.bramFramesPerBlock(), 4u);  // 2048 bits / 512
}

// ------------------------------------------------------- routing nodes -----

TEST(RoutingNodes, EncodeDecodeRoundTrip) {
  const auto spec = DeviceSpec::small();
  RoutingNodes n(spec);
  {
    const auto i = n.info(n.hseg(3, 12, 7));
    EXPECT_EQ(i.kind, NodeKind::HSeg);
    EXPECT_EQ(i.x, 3u);
    EXPECT_EQ(i.y, 12u);
    EXPECT_EQ(i.track, 7u);
  }
  {
    const auto i = n.info(n.vseg(12, 3, 0));
    EXPECT_EQ(i.kind, NodeKind::VSeg);
    EXPECT_EQ(i.x, 12u);
    EXPECT_EQ(i.y, 3u);
  }
  {
    const auto i = n.info(n.cbIn(CbCoord{7, 8}, CbInPin::Byp));
    EXPECT_EQ(i.kind, NodeKind::CbIn);
    EXPECT_EQ(i.x, 7u);
    EXPECT_EQ(i.y, 8u);
    EXPECT_EQ(i.track, 4u);
  }
  {
    const auto i = n.info(n.cbOut(CbCoord{0, 0}, CbOutPin::Ff));
    EXPECT_EQ(i.kind, NodeKind::CbOut);
    EXPECT_EQ(i.track, 1u);
  }
  {
    const auto i = n.info(n.pad(23));
    EXPECT_EQ(i.kind, NodeKind::Pad);
    EXPECT_EQ(i.x, 23u);
  }
  {
    const auto i = n.info(n.bramPin(1, 44));
    EXPECT_EQ(i.kind, NodeKind::BramPin);
    EXPECT_EQ(i.x, 1u);
    EXPECT_EQ(i.track, 44u);
  }
}

TEST(RoutingNodes, AllIdsDistinct) {
  const auto spec = DeviceSpec::small();
  RoutingNodes n(spec);
  std::set<std::uint32_t> ids;
  ids.insert(n.hseg(0, 0, 0));
  ids.insert(n.hseg(spec.cols - 1, spec.rows, spec.tracks - 1));
  ids.insert(n.vseg(0, 0, 0));
  ids.insert(n.vseg(spec.cols, spec.rows - 1, spec.tracks - 1));
  ids.insert(n.cbIn(CbCoord{0, 0}, CbInPin::I0));
  ids.insert(n.cbOut(CbCoord{11, 11}, CbOutPin::Ff));
  ids.insert(n.pad(0));
  ids.insert(n.pad(23));
  ids.insert(n.bramPin(0, 0));
  ids.insert(n.bramPin(1, 44));
  EXPECT_EQ(ids.size(), 10u);
  for (auto id : ids) EXPECT_LT(id, n.count());
}

// ----------------------------------------------- hand-configured device -----

/// Test helper: writes configuration bits directly (bitgen-style).
struct Hand {
  Device& d;
  const ConfigLayout& l;

  explicit Hand(Device& dev) : d(dev), l(dev.layout()) {}

  void pm(unsigned x, unsigned y, unsigned t, PmSwitch sw) {
    d.setLogicBit(l.pmSwitchBit(PmCoord{static_cast<std::uint16_t>(x),
                                        static_cast<std::uint16_t>(y)},
                                t, sw),
                  true);
  }
  void inConn(CbCoord cb, CbInPin pin, bool vertical, unsigned t) {
    d.setLogicBit(l.cbInConnBit(cb, pin, vertical, t), true);
  }
  void outConn(CbCoord cb, CbOutPin pin, bool vertical, unsigned t) {
    d.setLogicBit(l.cbOutConnBit(cb, pin, vertical, t), true);
  }
  void lut(CbCoord cb, std::uint16_t table) {
    for (unsigned i = 0; i < 16; ++i) {
      d.setLogicBit(l.cbLutBit(cb, i), (table >> i) & 1u);
    }
    d.setLogicBit(l.cbFieldBit(cb, CbField::LutUsed), true);
  }
  void ff(CbCoord cb, bool fromByp = false, bool srMode = false) {
    d.setLogicBit(l.cbFieldBit(cb, CbField::FfUsed), true);
    d.setLogicBit(l.cbFieldBit(cb, CbField::FfInSrc), fromByp);
    d.setLogicBit(l.cbFieldBit(cb, CbField::SrMode), srMode);
  }
  void inputPad(unsigned p) {
    d.setLogicBit(l.padFieldBit(p, PadField::Used), true);
  }
  void outputPad(unsigned p) {
    d.setLogicBit(l.padFieldBit(p, PadField::Used), true);
    d.setLogicBit(l.padFieldBit(p, PadField::IsOutput), true);
  }
  void padConn(unsigned p, bool vertical, unsigned t) {
    d.setLogicBit(l.padConnBit(p, vertical, t), true);
  }
};

/// pad0 --> CB(1,1) LUT(NOT) --> pad1, routed by hand.
void configureInverter(Device& dev) {
  Hand h(dev);
  const CbCoord cb{1, 1};
  h.inputPad(0);
  h.padConn(0, /*vertical=*/true, 0);  // pad0 -> VSeg(0,0,0)
  h.pm(0, 1, 0, PmSwitch::ES);         // VSeg(0,0,0) -> HSeg(0,1,0)
  h.pm(1, 1, 0, PmSwitch::WE);         // HSeg(0,1,0) -> HSeg(1,1,0)
  h.inConn(cb, CbInPin::I0, /*vertical=*/false, 0);
  h.lut(cb, 0x5555);  // NOT i0 (unconnected i1..i3 read 0)

  h.outConn(cb, CbOutPin::Lut, /*vertical=*/false, 1);  // -> HSeg(1,1,1)
  h.pm(1, 1, 1, PmSwitch::WE);                          // -> HSeg(0,1,1)
  h.outputPad(1);
  h.padConn(1, /*vertical=*/false, 1);  // pad1 <- HSeg(0,1,1)
}

TEST(Device, HandRoutedInverter) {
  Device dev(DeviceSpec::small());
  configureInverter(dev);
  dev.setPadInput(0, false);
  dev.settle();
  EXPECT_TRUE(dev.padValue(1));
  dev.setPadInput(0, true);
  dev.settle();
  EXPECT_FALSE(dev.padValue(1));
  EXPECT_EQ(dev.usedLutCount(), 1u);
  EXPECT_EQ(dev.usedFfCount(), 0u);
}

TEST(Device, LutTableRewriteChangesFunction) {
  Device dev(DeviceSpec::small());
  configureInverter(dev);
  dev.setPadInput(0, true);
  dev.settle();
  EXPECT_FALSE(dev.padValue(1));
  // Rewrite the LUT to a buffer: out = i0 (the pulse-fault mechanism).
  Hand h(dev);
  h.lut(CbCoord{1, 1}, 0xAAAA);
  dev.settle();
  EXPECT_TRUE(dev.padValue(1));
}

/// pad0 -> CB(2,2) LUT(BUF) -> FF -> pad2.
void configureRegisteredBuffer(Device& dev, bool srMode = false) {
  Hand h(dev);
  const CbCoord cb{2, 2};
  h.inputPad(0);
  h.padConn(0, false, 0);     // pad0 -> HSeg(0,0,0)
  h.pm(1, 0, 0, PmSwitch::WE);  // -> HSeg(1,0,0)
  h.pm(2, 0, 0, PmSwitch::WN);  // -> VSeg(2,0,0)
  h.pm(2, 1, 0, PmSwitch::NS);  // -> VSeg(2,1,0)
  h.pm(2, 2, 0, PmSwitch::NS);  // -> VSeg(2,2,0)
  h.inConn(cb, CbInPin::I0, true, 0);
  h.lut(cb, 0xAAAA);  // BUF i0
  h.ff(cb, /*fromByp=*/false, srMode);

  h.outConn(cb, CbOutPin::Ff, true, 1);  // FF out -> VSeg(2,2,1)
  h.pm(2, 2, 1, PmSwitch::WN);           // -> HSeg(1,2,1)
  h.pm(1, 2, 1, PmSwitch::WE);           // -> HSeg(0,2,1)
  h.outputPad(2);
  h.padConn(2, false, 1);  // pad2 (west row 2)
}

TEST(Device, FlipFlopCapturesOnClockEdge) {
  Device dev(DeviceSpec::small());
  configureRegisteredBuffer(dev);
  dev.setPadInput(0, true);
  dev.settle();
  EXPECT_FALSE(dev.padValue(2));  // not clocked yet
  dev.step();
  EXPECT_TRUE(dev.padValue(2));
  dev.setPadInput(0, false);
  dev.settle();
  EXPECT_TRUE(dev.padValue(2));  // holds until next edge
  dev.step();
  EXPECT_FALSE(dev.padValue(2));
  EXPECT_EQ(dev.usedFfCount(), 1u);
}

TEST(Device, GsrDrivesFfToSrMode) {
  Device dev(DeviceSpec::small());
  configureRegisteredBuffer(dev, /*srMode=*/true);
  dev.setPadInput(0, false);
  dev.step();
  EXPECT_FALSE(dev.padValue(2));
  dev.pulseGsr();
  EXPECT_TRUE(dev.padValue(2));  // preset by PRMux selection
  EXPECT_TRUE(dev.ffState(CbCoord{2, 2}));
}

TEST(Device, InvertLsrForcesAndReleasesFf) {
  // The paper's LSR-based bit-flip (Section 4.1): reconfigure the
  // InvertLSRMux to assert the local set/reset, then deassert it; the FF
  // keeps the SrMode value afterwards.
  Device dev(DeviceSpec::small());
  configureRegisteredBuffer(dev, /*srMode=*/true);
  dev.setPadInput(0, false);
  dev.step();  // state = 0
  EXPECT_FALSE(dev.padValue(2));

  const auto invLsr = dev.layout().cbFieldBit(CbCoord{2, 2}, CbField::InvLsr);
  dev.setLogicBit(invLsr, true);
  dev.settle();
  EXPECT_TRUE(dev.padValue(2));  // asynchronously set to 1

  dev.setLogicBit(invLsr, false);
  dev.settle();
  EXPECT_TRUE(dev.padValue(2));  // the flipped state persists
  dev.setPadInput(0, false);
  dev.step();
  EXPECT_FALSE(dev.padValue(2));  // normal operation resumes
}

TEST(Device, InvertBypPinInvertsFfData) {
  // Pulse fault on a CB input (Figure 6): flip the input inverter mux.
  Device dev(DeviceSpec::small());
  Hand h(dev);
  const CbCoord cb{1, 1};
  h.inputPad(0);
  h.padConn(0, true, 0);
  h.pm(0, 1, 0, PmSwitch::ES);
  h.pm(1, 1, 0, PmSwitch::WE);
  h.inConn(cb, CbInPin::Byp, false, 0);
  h.ff(cb, /*fromByp=*/true);
  h.outConn(cb, CbOutPin::Ff, false, 1);
  h.pm(1, 1, 1, PmSwitch::WE);
  h.outputPad(1);
  h.padConn(1, false, 1);

  dev.setPadInput(0, true);
  dev.step();
  EXPECT_TRUE(dev.padValue(1));

  dev.setLogicBit(dev.layout().cbFieldBit(cb, CbField::InvByp), true);
  dev.step();
  EXPECT_FALSE(dev.padValue(1));  // inverted data captured
  dev.setLogicBit(dev.layout().cbFieldBit(cb, CbField::InvByp), false);
  dev.step();
  EXPECT_TRUE(dev.padValue(1));
}

TEST(Device, ShortCircuitDetected) {
  Device dev(DeviceSpec::small());
  Hand h(dev);
  // Two LUT outputs driving the same horizontal segment.
  h.lut(CbCoord{1, 1}, 0xFFFF);
  h.lut(CbCoord{2, 1}, 0x0000);
  h.outConn(CbCoord{1, 1}, CbOutPin::Lut, false, 0);  // HSeg(1,1,0)
  h.outConn(CbCoord{2, 1}, CbOutPin::Lut, false, 0);  // HSeg(2,1,0)
  h.pm(2, 1, 0, PmSwitch::WE);                        // join them
  EXPECT_THROW(dev.settle(), FadesError);
}

TEST(Device, WiredAndResolvesShort) {
  Device dev(DeviceSpec::small());
  dev.setShortPolicy(ShortPolicy::WiredAnd);
  Hand h(dev);
  h.lut(CbCoord{1, 1}, 0xFFFF);  // constant 1
  h.lut(CbCoord{2, 1}, 0x0000);  // constant 0
  h.outConn(CbCoord{1, 1}, CbOutPin::Lut, false, 0);
  h.outConn(CbCoord{2, 1}, CbOutPin::Lut, false, 0);
  h.pm(2, 1, 0, PmSwitch::WE);
  // Observe the shorted net through an output pad.
  h.pm(1, 1, 0, PmSwitch::WE);  // HSeg(0,1,0)
  h.outputPad(1);
  h.padConn(1, false, 0);
  dev.settle();
  EXPECT_FALSE(dev.padValue(1));  // 1 AND 0 = 0 (dominant low)
  dev.setShortPolicy(ShortPolicy::WiredOr);
  dev.settle();
  EXPECT_TRUE(dev.padValue(1));
}

TEST(Device, CombinationalLoopRejected) {
  Device dev(DeviceSpec::small());
  Hand h(dev);
  const CbCoord cb{1, 1};
  h.lut(cb, 0x5555);                         // NOT i0
  h.outConn(cb, CbOutPin::Lut, false, 0);    // out -> HSeg(1,1,0)
  h.inConn(cb, CbInPin::I0, false, 0);       // i0 <- HSeg(1,1,0): loop!
  EXPECT_THROW(dev.settle(), FadesError);
}

TEST(Device, CaptureFrameExposesLiveFfState) {
  Device dev(DeviceSpec::small());
  configureRegisteredBuffer(dev);
  dev.setPadInput(0, true);
  dev.step();
  const auto frame = dev.readCaptureFrame(2);
  EXPECT_TRUE((frame[2 >> 3] >> (2 & 7)) & 1u);  // CB(2,2) is row 2
  dev.setPadInput(0, false);
  dev.step();
  const auto frame2 = dev.readCaptureFrame(2);
  EXPECT_FALSE((frame2[0] >> 2) & 1u);
}

TEST(Device, BramContentIsConfigurationMemory) {
  Device dev(DeviceSpec::small());
  // Route block 0 DOUT0 (pin 28) to east pad row 11, leave ADDR/WE floating
  // (address 0, never written).
  Hand h(dev);
  dev.setLogicBit(dev.layout().bramFieldBit(0, BramField::Used), true);
  // widthSel = 3 -> 8-bit aspect.
  dev.setLogicBit(dev.layout().bramFieldBit(0, BramField::WidthSelLo) + 0, true);
  dev.setLogicBit(dev.layout().bramFieldBit(0, BramField::WidthSelLo) + 1, true);
  const unsigned dout0 = DeviceSpec::kBramAddrPins + DeviceSpec::kBramDataPins;
  const unsigned xb = dev.layout().bramPinColumn(0, dout0);  // 28 % 6 = 4
  ASSERT_EQ(xb, 4u);
  dev.setLogicBit(dev.layout().bramPinConnBit(0, dout0, false, 0), true);
  // Walk HSeg(4,12,0) .. HSeg(11,12,0), then down to VSeg(12,11,0).
  for (unsigned x = 5; x <= 11; ++x) h.pm(x, 12, 0, PmSwitch::WE);
  h.pm(12, 12, 0, PmSwitch::WS);
  h.outputPad(12 + 11);  // east pad, row 11
  h.padConn(12 + 11, true, 0);

  // Store 0x01 at row 0 through the content plane (plane B).
  dev.setBramBit(dev.layout().bramContentBit(0, 0), true);
  dev.settle();
  EXPECT_FALSE(dev.padValue(12 + 11));  // latch not loaded yet
  dev.step();
  EXPECT_TRUE(dev.padValue(12 + 11));  // synchronous read of row 0, bit 0

  // Flip the stored bit via plane B - the paper's memory bit-flip.
  dev.setBramBit(dev.layout().bramContentBit(0, 0), false);
  dev.step();
  EXPECT_FALSE(dev.padValue(12 + 11));
  EXPECT_EQ(dev.bramWord(0, 8, 0), 0u);
}

TEST(Device, FullBitstreamRoundTripAndReset) {
  Device dev(DeviceSpec::small());
  configureRegisteredBuffer(dev, /*srMode=*/true);
  dev.setPadInput(0, false);
  dev.step();
  EXPECT_FALSE(dev.ffState(CbCoord{2, 2}));

  const Bitstream bs = dev.readbackBitstream();
  Device dev2(DeviceSpec::small());
  dev2.writeFullBitstream(bs);
  // Configuration download asserts GSR: FF starts at SrMode (1).
  EXPECT_TRUE(dev2.ffState(CbCoord{2, 2}));
  dev2.setPadInput(0, true);
  dev2.step();
  EXPECT_TRUE(dev2.padValue(2));
  EXPECT_EQ(dev2.readbackBitstream().logic, bs.logic);
}

TEST(Device, StateCaptureRestoreReplays) {
  Device dev(DeviceSpec::small());
  configureRegisteredBuffer(dev);
  dev.setPadInput(0, true);
  dev.step();
  const DeviceState st = dev.captureState();
  dev.setPadInput(0, false);
  dev.step();
  EXPECT_FALSE(dev.padValue(2));
  dev.restoreState(st);
  EXPECT_EQ(dev.cycle(), 1u);
  EXPECT_TRUE(dev.padValue(2));
}

// -------------------------------------------------------------- timing -----

TEST(Device, FanoutTransistorIncreasesDelay) {
  Device dev(DeviceSpec::small());
  configureInverter(dev);
  dev.setTimingEnabled(true);
  dev.settle();
  const auto sink = dev.nodes().cbIn(CbCoord{1, 1}, CbInPin::I0);
  const double before = dev.sinkDelayNs(sink);
  EXPECT_GT(before, 0.0);

  // Turn ON an unused pass transistor touching the net (Figure 8): the
  // extra load must increase the propagation delay slightly.
  Hand h(dev);
  h.pm(1, 1, 0, PmSwitch::EN);  // dangling VSeg(1,1,0) attached to the path
  dev.settle();
  const double after = dev.sinkDelayNs(sink);
  EXPECT_GT(after, before);
  EXPECT_LT(after - before, 1.0);  // a small delay, as the paper requires
}

TEST(Device, LongerRouteIncreasesDelayMore) {
  Device devShort(DeviceSpec::small());
  configureInverter(devShort);
  devShort.setTimingEnabled(true);
  devShort.settle();
  const double shortDelay = devShort.sinkDelayNs(
      devShort.nodes().cbIn(CbCoord{1, 1}, CbInPin::I0));

  // Same circuit, but the input routed the long way around (more segments).
  Device dev(DeviceSpec::small());
  Hand h(dev);
  const CbCoord cb{1, 1};
  h.inputPad(0);
  h.padConn(0, true, 0);  // VSeg(0,0,0)
  h.pm(0, 1, 0, PmSwitch::NS);
  h.pm(0, 2, 0, PmSwitch::NS);
  h.pm(0, 3, 0, PmSwitch::ES);  // -> HSeg(0,3,0)
  h.pm(1, 3, 0, PmSwitch::WS);  // -> VSeg(1,2,0)
  h.pm(1, 2, 0, PmSwitch::NS);  // -> VSeg(1,1,0)
  h.pm(1, 1, 0, PmSwitch::EN);  // -> HSeg(1,1,0)
  h.inConn(cb, CbInPin::I0, false, 0);
  h.lut(cb, 0x5555);
  h.outConn(cb, CbOutPin::Lut, false, 1);
  h.pm(1, 1, 1, PmSwitch::WE);
  h.outputPad(1);
  h.padConn(1, false, 1);
  dev.setTimingEnabled(true);
  dev.settle();
  const double longDelay =
      dev.sinkDelayNs(dev.nodes().cbIn(cb, CbInPin::I0));
  EXPECT_GT(longDelay, shortDelay + 3 * dev.spec().segmentDelayNs);
  // Functionality unchanged by the detour.
  dev.setPadInput(0, true);
  dev.settle();
  EXPECT_FALSE(dev.padValue(1));
}

TEST(Device, LateFfCapturesStaleValue) {
  // Shrink the clock period so the registered buffer's path misses setup:
  // the FF must capture the previous cycle's data (delay-fault mechanism).
  DeviceSpec spec = DeviceSpec::small();
  spec.clockPeriodNs = 1.0;  // absurdly fast clock: every path is late
  Device dev(spec);
  configureRegisteredBuffer(dev);
  dev.setTimingEnabled(true);
  dev.setPadInput(0, true);
  dev.step();
  // With timing on and the path late, the FF captured the stale (previous)
  // D value, which was 0.
  EXPECT_FALSE(dev.padValue(2));
  dev.step();
  EXPECT_TRUE(dev.padValue(2));  // arrives one cycle later
  EXPECT_GE(dev.timingReport().lateFfCount, 1u);
}

TEST(Device, TimingOffMeansIdealCapture) {
  DeviceSpec spec = DeviceSpec::small();
  spec.clockPeriodNs = 1.0;
  Device dev(spec);
  configureRegisteredBuffer(dev);
  dev.setPadInput(0, true);
  dev.step();
  EXPECT_TRUE(dev.padValue(2));
}

}  // namespace
}  // namespace fades::fpga
