file(REMOVE_RECURSE
  "libfades_sim.a"
)
