# Empty dependencies file for fades_vfit.
# This may be replaced when dependencies are built.
