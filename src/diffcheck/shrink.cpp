#include "diffcheck/shrink.hpp"

#include <algorithm>
#include <future>
#include <optional>

namespace fades::diffcheck {

namespace {

/// Big-step reductions first (halving), small steps last: the classic
/// delta-debugging ordering, which converges in O(log) rounds on cases
/// where a large prefix of the structure is irrelevant.
void programCandidates(const CaseSpec& c, std::vector<CaseSpec>& out) {
  const std::size_t n = c.program.size();
  if (n <= 1) return;  // only the final idle loop left
  // Chunk removals (never touching the last line: it is the idle loop that
  // keeps execution from running off the end of the ROM).
  for (std::size_t len = (n - 1) / 2; len >= 2; len /= 2) {
    for (std::size_t start = 0; start + len <= n - 1; start += len) {
      CaseSpec cand = c;
      cand.program.erase(cand.program.begin() + static_cast<long>(start),
                         cand.program.begin() + static_cast<long>(start + len));
      out.push_back(std::move(cand));
    }
  }
  // Single-line removals.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    CaseSpec cand = c;
    cand.program.erase(cand.program.begin() + static_cast<long>(i));
    out.push_back(std::move(cand));
  }
}

void rtlCandidates(const CaseSpec& c, std::vector<CaseSpec>& out) {
  const auto with = [&](auto mutate) {
    CaseSpec cand = c;
    mutate(cand);
    out.push_back(std::move(cand));
  };
  if (c.rtl.gates > 1) with([](CaseSpec& s) { s.rtl.gates /= 2; });
  if (c.rtl.gates > 0) with([](CaseSpec& s) { s.rtl.gates -= 1; });
  if (c.rtl.regs > 1) with([](CaseSpec& s) { s.rtl.regs -= 1; });
  if (c.rtl.regWidth > 1) with([](CaseSpec& s) { s.rtl.regWidth -= 1; });
  if (c.rtl.withRam &&
      c.inject.targets != campaign::TargetClass::MemoryBlockBit) {
    with([](CaseSpec& s) { s.rtl.withRam = false; });
  }
  if (c.rtl.namedSignals > 1) with([](CaseSpec& s) { s.rtl.namedSignals /= 2; });
}

bool matching(const std::vector<Violation>& violations,
              const std::string& rule, Violation& found) {
  for (const auto& v : violations) {
    if (v.rule == rule) {
      found = v;
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<CaseSpec> shrinkCandidates(const CaseSpec& c) {
  std::vector<CaseSpec> out;
  if (c.kind == DesignKind::Mc8051) {
    programCandidates(c, out);
  } else {
    rtlCandidates(c, out);
  }
  // Shared reductions: fewer experiments, then a shorter workload. A
  // shorter workload also pulls the injection instant earlier (instants are
  // drawn uniformly below runCycles).
  const auto with = [&](auto mutate) {
    CaseSpec cand = c;
    mutate(cand);
    out.push_back(std::move(cand));
  };
  if (c.inject.experiments > 1) {
    with([](CaseSpec& s) { s.inject.experiments = 1; });
    with([](CaseSpec& s) { s.inject.experiments -= 1; });
  }
  if (c.runCycles > 4) with([](CaseSpec& s) { s.runCycles /= 2; });
  if (c.runCycles > 2) with([](CaseSpec& s) { s.runCycles -= 1; });
  return out;
}

ShrinkResult shrinkCase(const CaseSpec& failing, const Violation& violation,
                        const CaseOracle& oracle, ShrinkOptions opt) {
  ShrinkResult result;
  result.minimal = failing;
  result.violation = violation;
  const unsigned jobs = std::max(1u, opt.jobs);

  // Evaluate safely: an oracle exception (unbuildable candidate, assembler
  // error after a line removal, ...) means "does not reproduce".
  const auto evaluate = [&](const CaseSpec& cand) -> std::optional<Violation> {
    try {
      Violation found;
      if (matching(oracle(cand), violation.rule, found)) return found;
    } catch (...) {
    }
    return std::nullopt;
  };

  for (;;) {
    const std::vector<CaseSpec> cands = shrinkCandidates(result.minimal);
    bool acceptedThisRound = false;
    for (std::size_t base = 0; base < cands.size() && !acceptedThisRound;
         base += jobs) {
      const std::size_t batchEnd = std::min(cands.size(), base + jobs);
      // Evaluate the batch concurrently, then scan it in order. Only the
      // candidates the sequential scan would have examined are charged, so
      // budget consumption - and with it the full reduction trajectory -
      // is independent of the job count.
      std::vector<std::future<std::optional<Violation>>> batch;
      for (std::size_t k = base; k < batchEnd; ++k) {
        batch.push_back(std::async(std::launch::async, evaluate,
                                   std::cref(cands[k])));
      }
      std::vector<std::optional<Violation>> got(batch.size());
      for (std::size_t k = 0; k < batch.size(); ++k) got[k] = batch[k].get();
      for (std::size_t k = 0; k < got.size(); ++k) {
        if (result.evaluated >= opt.maxEvaluations) {
          result.budgetExhausted = true;
          return result;
        }
        ++result.evaluated;
        if (got[k].has_value()) {
          result.minimal = cands[base + k];
          result.violation = *got[k];
          ++result.accepted;
          acceptedThisRound = true;
          break;
        }
      }
    }
    if (!acceptedThisRound) return result;  // local minimum
  }
}

}  // namespace fades::diffcheck
