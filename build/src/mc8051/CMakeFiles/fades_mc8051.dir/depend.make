# Empty dependencies file for fades_mc8051.
# This may be replaced when dependencies are built.
