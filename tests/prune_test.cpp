// Prove-the-collapse equivalence suite for liveness-based fault-list
// pruning (src/prune).
//
// The pruning plan's claim is strong: every collapsed member produces THE
// SAME outcome and measured cost fields as its class representative. The
// PruneEquivalence suite does not take the analysis's word for it - for
// random rtl::Builder designs across the supported fault-model x
// target-class matrix it actually RUNS every collapsed member unpruned,
// synthesizes the same member from its representative, and asserts
// field-for-field identity between the two. The runner-level tests then
// pin the artifact contract: a pruned campaign's folded fades.run/1 text is
// identical at any --jobs and across a journal truncation + --resume, and
// differs from the unpruned artifact only by the pruned_from provenance
// field. A committed golden plan for the paper's Bubblesort workload pins
// the fades.prune/1 serialization byte for byte.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/parallel.hpp"
#include "campaign/prune_plan.hpp"
#include "campaign/types.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/fades.hpp"
#include "fpga/device.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "prune/prune.hpp"
#include "rtl/builder.hpp"
#include "service/jobspec.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "synth/implement.hpp"
#include "vfit/vfit.hpp"

namespace fades {
namespace {

namespace fs = std::filesystem;
using campaign::CampaignSpec;
using campaign::DurationBand;
using campaign::ExperimentOutcome;
using campaign::FaultModel;
using campaign::TargetClass;
using common::Rng;
using netlist::Netlist;
using netlist::Unit;
using rtl::Builder;
using rtl::Bus;

constexpr std::uint64_t kCycles = 48;

/// A one-cycle duration band: every draw yields duration 1.0, so every
/// experiment on the same target shares one cost signature. Used by the
/// pulse / indetermination cases, whose collapse is keyed by the active
/// window - a fixed window guarantees multi-member classes.
DurationBand oneCycleBand() { return {1.0, 1.0, "1"}; }

/// Random sequential circuit with every population the pruning analysis
/// reasons about: a counter FSM, live feedback registers, a combinational
/// soup with named HDL signals, a written-and-read RAM - plus deliberately
/// dead logic (a register nothing consumes and two named signals feeding
/// nothing) so dead-target collapse always has prey.
Netlist pruneCircuit(std::uint64_t seed) {
  Rng rng(seed);
  Builder b;
  b.setUnit(Unit::Fsm);
  rtl::Register cnt = b.makeRegister("cnt", 4, 0);
  b.connect(cnt, b.increment(cnt.q));

  b.setUnit(Unit::Registers);
  std::vector<rtl::Register> regs;
  const unsigned nRegs = 2 + static_cast<unsigned>(rng.below(3));
  for (unsigned r = 0; r < nRegs; ++r) {
    regs.push_back(
        b.makeRegister("r" + std::to_string(r), 4, rng.below(16)));
  }
  std::vector<rtl::NetId> pool(cnt.q.begin(), cnt.q.end());
  for (const auto& r : regs) {
    pool.insert(pool.end(), r.q.begin(), r.q.end());
  }

  b.setUnit(Unit::Alu);
  std::vector<rtl::NetId> made;
  for (unsigned g = 0; g < 20; ++g) {
    const auto pick = [&] { return pool[rng.below(pool.size())]; };
    rtl::NetId out;
    switch (rng.below(4)) {
      case 0: out = b.land(pick(), pick()); break;
      case 1: out = b.lxor(pick(), pick()); break;
      case 2: out = b.lnot(pick()); break;
      default: out = b.lmux(pick(), pick(), pick()); break;
    }
    pool.push_back(out);
    made.push_back(out);
  }
  for (unsigned s = 0; s < 4 && s < made.size(); ++s) {
    b.nameBus("s" + std::to_string(s), {made[s]});
  }

  // Dead register: its D input is driven (a live sink like any flop D), but
  // its Q bits only reach a debug port the campaigns do not observe. The
  // debug port keeps the cone physically implemented - synthesis would
  // otherwise sweep it and FADES would have no LUT to target - while the
  // liveness analysis, which only trusts the observed outputs, proves every
  // fault on it invisible.
  rtl::Register deadr = b.makeRegister("deadr", 3, 5);
  Bus deadD;
  for (int k = 0; k < 3; ++k) deadD.push_back(pool[rng.below(pool.size())]);
  b.connect(deadr, deadD);
  b.setUnit(Unit::Alu);
  const rtl::NetId dead0 = b.lxor(deadr.q[0], deadr.q[1]);
  const rtl::NetId dead1 = b.lnot(deadr.q[2]);
  b.nameBus("dead0", {dead0});
  b.nameBus("dead1", {dead1});
  b.output("debug", {dead0, dead1});

  // RAM that is both written (odd counter values) and read every cycle, so
  // memory faults can surface, be overwritten, or expire out of window.
  b.setUnit(Unit::Ram);
  Bus dout = b.ram("m", 4, 4, cnt.q, regs[0].q, cnt.q[0]);

  b.setUnit(Unit::Registers);
  for (auto& r : regs) {
    Bus d;
    for (int k = 0; k < 4; ++k) d.push_back(pool[rng.below(pool.size())]);
    b.connect(r, d);
  }
  Bus out;
  for (int k = 0; k < 4; ++k) out.push_back(pool[rng.below(pool.size())]);
  out.push_back(dout[0]);
  out.push_back(dout[1]);
  b.output("out", out);
  return b.finish();
}

/// Field-for-field identity between a member actually executed and the same
/// member synthesized from its class representative. The only permitted
/// difference is provenance: the synthesized record carries pruned_from.
void expectOutcomeEq(const ExperimentOutcome& real,
                     const ExperimentOutcome& synth,
                     std::uint64_t representative) {
  EXPECT_EQ(real.index, synth.index);
  EXPECT_EQ(real.outcome, synth.outcome);
  EXPECT_EQ(real.modeledSeconds, synth.modeledSeconds);
  EXPECT_EQ(real.configSeconds, synth.configSeconds);
  EXPECT_EQ(real.workloadSeconds, synth.workloadSeconds);
  EXPECT_EQ(real.hostSeconds, synth.hostSeconds);
  EXPECT_EQ(real.bytesToDevice, synth.bytesToDevice);
  EXPECT_EQ(real.bytesFromDevice, synth.bytesFromDevice);
  EXPECT_EQ(real.sessions, synth.sessions);
  EXPECT_FALSE(real.quarantined);
  EXPECT_FALSE(synth.quarantined);
  ASSERT_EQ(real.hasRecord, synth.hasRecord);
  if (real.hasRecord) {
    EXPECT_EQ(real.record.targetName, synth.record.targetName);
    EXPECT_EQ(real.record.injectCycle, synth.record.injectCycle);
    EXPECT_EQ(real.record.durationCycles, synth.record.durationCycles);
    EXPECT_EQ(real.record.outcome, synth.record.outcome);
    EXPECT_EQ(real.record.modeledSeconds, synth.record.modeledSeconds);
    EXPECT_EQ(real.record.component, synth.record.component);
    EXPECT_EQ(real.record.pc, synth.record.pc);
    EXPECT_EQ(real.record.opcode, synth.record.opcode);
    EXPECT_EQ(real.record.detectCycle, synth.record.detectCycle);
    EXPECT_EQ(real.record.prunedFrom, -1);
    EXPECT_EQ(synth.record.prunedFrom,
              static_cast<std::int64_t>(representative));
  }
}

struct VerifyStats {
  std::uint64_t classes = 0;
  std::uint64_t members = 0;
};

/// Build the plan for `spec` over the VFIT tool and execute-verify every
/// collapsed member against its synthesized twin.
VerifyStats verifyVfit(const Netlist& nl, CampaignSpec spec) {
  vfit::VfitOptions opt;
  opt.observedOutputs = {"out"};
  opt.keepRecords = true;
  vfit::VfitTool tool(nl, kCycles, opt);
  const auto pool = tool.campaignPool(spec);
  if (pool.empty()) return {};

  sim::Simulator golden(nl);
  const auto trace = sim::GoldenTrace::record(golden, nl, kCycles);
  prune::AnalysisInputs in;
  in.netlist = &nl;
  in.trace = &trace;
  in.runCycles = kCycles;
  in.observedOutputs = {"out"};
  in.decode = prune::vfitDecoder(nl, spec.targets);
  in.name = [](std::uint32_t h) { return std::to_string(h); };
  in.uniformCostAcrossTargets = true;
  const auto plan = prune::buildPlan(spec, pool, in);
  plan.validate();

  VerifyStats st;
  st.classes = plan.classes.size();
  for (const auto& cls : plan.classes) {
    const auto rep = tool.runCampaignExperiment(
        spec, pool, static_cast<unsigned>(cls.representative));
    for (const std::uint64_t m : cls.members) {
      const auto real =
          tool.runCampaignExperiment(spec, pool, static_cast<unsigned>(m));
      const auto synth = tool.synthesizeCampaignExperiment(
          spec, pool, static_cast<unsigned>(m), rep);
      expectOutcomeEq(real, synth, cls.representative);
      ++st.members;
    }
  }
  return st;
}

/// Same execute-verify loop over the FADES tool (device-level handles,
/// metered reconfiguration costs). `poolNamePrefix` restricts the campaign
/// to targets whose tool name starts with the prefix - used to aim the
/// indetermination case straight at the dead register.
VerifyStats verifyFades(const Netlist& nl, CampaignSpec spec,
                        const char* poolNamePrefix = nullptr) {
  const auto impl = synth::implement(nl, fpga::DeviceSpec::small());
  fpga::Device device(impl.spec);
  core::FadesOptions opt;
  opt.observedOutputs = {"out"};
  opt.keepRecords = true;
  core::FadesTool tool(device, impl, kCycles, opt);
  if (poolNamePrefix != nullptr) {
    for (const auto h :
         tool.targets(spec.model, spec.targets, Unit::None)) {
      if (tool.targetName(spec.targets, h).rfind(poolNamePrefix, 0) == 0) {
        spec.targetPool.push_back(h);
      }
    }
    if (spec.targetPool.empty()) return {};
  }
  const auto pool = tool.campaignPool(spec);
  if (pool.empty()) return {};

  sim::Simulator golden(nl);
  const auto trace = sim::GoldenTrace::record(golden, nl, kCycles);
  prune::AnalysisInputs in;
  in.netlist = &nl;
  in.trace = &trace;
  in.runCycles = kCycles;
  in.observedOutputs = {"out"};
  in.decode = prune::fadesDecoder(impl, spec.targets);
  in.name = [&tool, cls = spec.targets](std::uint32_t h) {
    return tool.targetName(cls, h);
  };
  const auto plan = prune::buildPlan(spec, pool, in);
  plan.validate();

  VerifyStats st;
  st.classes = plan.classes.size();
  for (const auto& cls : plan.classes) {
    const auto rep = tool.runCampaignExperiment(
        spec, pool, static_cast<unsigned>(cls.representative));
    for (const std::uint64_t m : cls.members) {
      const auto real =
          tool.runCampaignExperiment(spec, pool, static_cast<unsigned>(m));
      const auto synth = tool.synthesizeCampaignExperiment(
          spec, pool, static_cast<unsigned>(m), rep);
      expectOutcomeEq(real, synth, cls.representative);
      ++st.members;
    }
  }
  return st;
}

CampaignSpec makeSpec(FaultModel model, TargetClass targets,
                      DurationBand band, unsigned experiments,
                      std::uint64_t seed) {
  CampaignSpec spec;
  spec.model = model;
  spec.targets = targets;
  spec.unit = static_cast<int>(Unit::None);
  spec.band = band;
  spec.experiments = experiments;
  spec.seed = seed;
  return spec;
}

// ------------------------------------------------------ PruneEquivalence ---

class PruneEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PruneEquivalence, VfitBitFlipFlops) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = pruneCircuit(seed);
  const auto st = verifyVfit(
      nl, makeSpec(FaultModel::BitFlip, TargetClass::SequentialFF,
                   DurationBand::shortBand(), 60, 100 + seed));
  // The dead register alone guarantees provably-silent flip-flop faults.
  EXPECT_GT(st.classes, 0u);
  EXPECT_GT(st.members, 0u);
}

TEST_P(PruneEquivalence, VfitBitFlipFlopsSubCycle) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = pruneCircuit(seed);
  const auto st = verifyVfit(
      nl, makeSpec(FaultModel::BitFlip, TargetClass::SequentialFF,
                   DurationBand::subCycle(), 40, 300 + seed));
  EXPECT_GT(st.classes, 0u);
}

TEST_P(PruneEquivalence, VfitBitFlipMemory) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = pruneCircuit(seed);
  const auto st = verifyVfit(
      nl, makeSpec(FaultModel::BitFlip, TargetClass::MemoryBlockBit,
                   DurationBand::shortBand(), 60, 200 + seed));
  // 64 memory bits against a single-row-per-cycle address stream: most
  // flips are erased by a write or never read inside the workload.
  EXPECT_GT(st.classes, 0u);
  EXPECT_GT(st.members, 0u);
}

TEST_P(PruneEquivalence, VfitPulseSignals) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = pruneCircuit(seed);
  const auto st = verifyVfit(
      nl, makeSpec(FaultModel::Pulse, TargetClass::CombinationalLut,
                   oneCycleBand(), 40, 400 + seed));
  EXPECT_GT(st.classes, 0u);  // dead0/dead1 are named and provably dead
}

TEST_P(PruneEquivalence, VfitIndeterminationFlops) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = pruneCircuit(seed);
  const auto st = verifyVfit(
      nl, makeSpec(FaultModel::Indetermination, TargetClass::SequentialFF,
                   oneCycleBand(), 48, 500 + seed));
  EXPECT_GT(st.classes, 0u);  // deadr's three bits collapse
}

TEST_P(PruneEquivalence, FadesBitFlipFlops) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = pruneCircuit(seed);
  const auto st = verifyFades(
      nl, makeSpec(FaultModel::BitFlip, TargetClass::SequentialFF,
                   DurationBand::shortBand(), 48, 600 + seed));
  EXPECT_GT(st.classes, 0u);
  EXPECT_GT(st.members, 0u);
}

TEST_P(PruneEquivalence, FadesBitFlipMemory) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = pruneCircuit(seed);
  const auto st = verifyFades(
      nl, makeSpec(FaultModel::BitFlip, TargetClass::MemoryBlockBit,
                   DurationBand::shortBand(), 48, 700 + seed));
  EXPECT_GT(st.classes, 0u);
}

TEST_P(PruneEquivalence, FadesPulseLuts) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = pruneCircuit(seed);
  const auto st = verifyFades(
      nl, makeSpec(FaultModel::Pulse, TargetClass::CombinationalLut,
                   oneCycleBand(), 80, 800 + seed));
  // FADES keeps per-LUT classes (frame-metered cost), so collapse needs two
  // draws on the same dead LUT; 80 experiments over the soup guarantee it.
  EXPECT_GT(st.members, 0u);
}

TEST_P(PruneEquivalence, FadesIndeterminationDeadFlops) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = pruneCircuit(seed);
  const auto st = verifyFades(
      nl,
      makeSpec(FaultModel::Indetermination, TargetClass::SequentialFF,
               oneCycleBand(), 48, 900 + seed),
      "deadr");
  EXPECT_GT(st.classes, 0u);
  EXPECT_GT(st.members, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruneEquivalence, ::testing::Range(1, 4));

TEST(PrunePlan, DelayCampaignsAreNeverPruned) {
  // The analysis cannot vouch for delay faults (re-routed timing has no
  // golden-trace equivalence), so the plan must come back empty rather than
  // guess.
  const Netlist nl = pruneCircuit(1);
  const auto impl = synth::implement(nl, fpga::DeviceSpec::small());
  fpga::Device device(impl.spec);
  core::FadesOptions opt;
  opt.observedOutputs = {"out"};
  core::FadesTool tool(device, impl, kCycles, opt);
  const auto spec = makeSpec(FaultModel::Delay, TargetClass::SequentialLine,
                             DurationBand::shortBand(), 24, 42);
  const auto pool = tool.campaignPool(spec);
  ASSERT_FALSE(pool.empty());

  sim::Simulator golden(nl);
  const auto trace = sim::GoldenTrace::record(golden, nl, kCycles);
  prune::AnalysisInputs in;
  in.netlist = &nl;
  in.trace = &trace;
  in.runCycles = kCycles;
  in.observedOutputs = {"out"};
  in.decode = prune::fadesDecoder(impl, spec.targets);
  in.name = [&tool](std::uint32_t h) {
    return tool.targetName(TargetClass::SequentialLine, h);
  };
  const auto plan = prune::buildPlan(spec, pool, in);
  EXPECT_TRUE(plan.classes.empty());
  EXPECT_EQ(plan.collapsedCount(), 0u);
  EXPECT_EQ(plan.collapseFactor(), 1.0);
}

// ------------------------------------------------------- plan vocabulary ---

TEST(PrunePlan, JsonRoundTripIsExact) {
  service::JobSpec job;
  job.tool = "vfit";
  job.workload = "demo";
  job.spec.experiments = 80;
  job.spec.seed = 7;
  job.prune = true;
  service::validate(job);
  const auto sys = service::buildSystem(job);
  const auto plan = service::buildPrunePlan(*sys);

  const std::string text = campaign::toJson(plan).dump(2);
  const auto parsed = obs::Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  campaign::PrunePlan back;
  std::string error;
  ASSERT_TRUE(campaign::prunePlanFromJson(*parsed, back, &error)) << error;
  back.validate();
  EXPECT_EQ(campaign::toJson(back).dump(2), text);
  EXPECT_EQ(campaign::specKey(back.spec), campaign::specKey(plan.spec));
}

TEST(PrunePlan, ValidateRejectsMalformedPlans) {
  campaign::PrunePlan plan;
  plan.spec.experiments = 10;
  campaign::PruneClass cls;
  cls.representative = 0;
  cls.members = {1, 2};
  plan.classes.push_back(cls);
  plan.validate();  // well-formed baseline

  auto broken = plan;
  broken.classes[0].representative = 10;  // out of range
  EXPECT_THROW(broken.validate(), common::FadesError);

  broken = plan;
  broken.classes[0].members.push_back(0);  // representative as own member
  EXPECT_THROW(broken.validate(), common::FadesError);

  broken = plan;
  broken.classes.push_back(plan.classes[0]);  // member in two classes
  broken.classes[1].representative = 3;
  EXPECT_THROW(broken.validate(), common::FadesError);

  broken = plan;
  broken.classes[0].members.clear();  // class collapsing nothing
  EXPECT_THROW(broken.validate(), common::FadesError);

  broken = plan;
  broken.classes.push_back(campaign::PruneClass{});
  broken.classes[1].representative = 5;
  broken.classes[1].members = {0};  // representative collapsed elsewhere
  EXPECT_THROW(broken.validate(), common::FadesError);
}

TEST(PrunePlan, AccountingLineCarriesTheFullBreakdown) {
  campaign::PrunePlan plan;
  plan.spec.experiments = 8;
  campaign::PruneClass cls;
  cls.representative = 0;
  cls.members = {1, 2, 3};
  cls.reason = campaign::PruneReason::OverwriteBeforeRead;
  plan.classes.push_back(cls);

  const std::string line = campaign::accountingLine(plan);
  EXPECT_NE(line.find("prune plan: experiments=8"), std::string::npos);
  EXPECT_NE(line.find("executed=5"), std::string::npos);
  EXPECT_NE(line.find("collapsed=3"), std::string::npos);
  EXPECT_NE(line.find("factor=1.60x"), std::string::npos);
  EXPECT_NE(line.find("overwrite_before_read=3"), std::string::npos);
  EXPECT_NE(line.find("dead_target=0"), std::string::npos);
  EXPECT_NE(line.find("quiescent_until_read=0"), std::string::npos);
  EXPECT_NE(line.find("out_of_window=0"), std::string::npos);
}

TEST(PrunePlan, JobSpecGatesAndFingerprintStability) {
  service::JobSpec job;
  job.workload = "demo";
  job.spec.experiments = 10;

  // `prune` is serialized only when set, so every pre-pruning job identity
  // (journal filenames, worker caches) survives the schema addition.
  EXPECT_EQ(service::toJson(job).find("prune"), nullptr);
  const std::string before = service::fingerprint(job);
  job.prune = false;
  EXPECT_EQ(service::fingerprint(job), before);
  job.prune = true;
  EXPECT_NE(service::toJson(job).find("prune"), nullptr);
  EXPECT_NE(service::fingerprint(job), before);

  // The autonomous backend cannot synthesize collapsed outcomes.
  auto bad = job;
  bad.tool = "autonomous";
  bad.engine = "compiled";
  EXPECT_THROW(service::validate(bad), common::FadesError);

  // A faulted link could quarantine a representative, which would break the
  // byte-identity contract for every member synthesized from it.
  bad = job;
  bad.tool = "fades";
  bad.linkFaultRate = 0.01;
  EXPECT_THROW(service::validate(bad), common::FadesError);
}

// ------------------------------------------------------ runner artifacts ---

/// The pruned-campaign fixture used by every artifact-identity scenario:
/// the fast demo workload under the VFIT tool, folded through the same
/// buildSystem/buildPrunePlan path campaign_8051 --prune uses.
struct PrunedDemo {
  service::JobSpec job;
  std::shared_ptr<service::CampaignSystem> sys;
  campaign::PrunePlan plan;

  PrunedDemo() {
    job.tool = "vfit";
    job.workload = "demo";
    job.spec.experiments = 120;
    job.spec.seed = 7;
    job.prune = true;
    service::validate(job);
    sys = service::buildSystem(job);
    plan = service::buildPrunePlan(*sys);
  }

  std::string artifact(const campaign::CampaignResult& result) const {
    return service::artifactText(job, result);
  }

  campaign::CampaignResult run(unsigned jobs, bool pruned,
                               campaign::CampaignJournal* journal = nullptr,
                               bool resume = false) const {
    campaign::ParallelOptions popt;
    popt.jobs = jobs;
    popt.journal = journal;
    popt.resume = resume;
    if (pruned) popt.prunePlan = &plan;
    campaign::ParallelCampaignRunner runner(sys->factory, popt);
    return runner.run(job.spec);
  }
};

TEST(PruneArtifact, OutcomeTotalsMatchUnprunedAndJobsCountIsIrrelevant) {
  PrunedDemo demo;
  ASSERT_GT(demo.plan.collapsedCount(), 0u)
      << "demo workload must exhibit some collapse for this test to bite";

  const auto unpruned = demo.run(1, /*pruned=*/false);
  const auto pruned1 = demo.run(1, /*pruned=*/true);
  const auto pruned8 = demo.run(8, /*pruned=*/true);

  // Pruned artifacts are byte-identical at any worker count.
  EXPECT_EQ(demo.artifact(pruned1), demo.artifact(pruned8));

  // Against the unpruned run: identical outcome totals and cost breakdown...
  EXPECT_EQ(pruned1.failures, unpruned.failures);
  EXPECT_EQ(pruned1.latents, unpruned.latents);
  EXPECT_EQ(pruned1.silents, unpruned.silents);
  EXPECT_EQ(pruned1.cost.configSeconds, unpruned.cost.configSeconds);
  EXPECT_EQ(pruned1.cost.workloadSeconds, unpruned.cost.workloadSeconds);
  EXPECT_EQ(pruned1.cost.hostSeconds, unpruned.cost.hostSeconds);
  EXPECT_EQ(pruned1.cost.bytesToDevice, unpruned.cost.bytesToDevice);
  EXPECT_EQ(pruned1.cost.sessions, unpruned.cost.sessions);
  EXPECT_TRUE(pruned1.quarantined.empty());

  // ...and records identical field for field, except that exactly the
  // collapsed members carry pruned_from provenance.
  ASSERT_EQ(pruned1.records.size(), unpruned.records.size());
  const auto memberClass = demo.plan.memberClassIndex();
  std::uint64_t flagged = 0;
  for (std::size_t i = 0; i < pruned1.records.size(); ++i) {
    const auto& p = pruned1.records[i];
    const auto& u = unpruned.records[i];
    EXPECT_EQ(p.targetName, u.targetName);
    EXPECT_EQ(p.injectCycle, u.injectCycle);
    EXPECT_EQ(p.durationCycles, u.durationCycles);
    EXPECT_EQ(p.outcome, u.outcome);
    EXPECT_EQ(p.modeledSeconds, u.modeledSeconds);
    EXPECT_EQ(p.component, u.component);
    EXPECT_EQ(p.detectCycle, u.detectCycle);
    EXPECT_EQ(u.prunedFrom, -1);
    if (memberClass[i] >= 0) {
      EXPECT_EQ(p.prunedFrom,
                static_cast<std::int64_t>(
                    demo.plan.classes[static_cast<std::size_t>(memberClass[i])]
                        .representative));
      ++flagged;
    } else {
      EXPECT_EQ(p.prunedFrom, -1);
    }
  }
  EXPECT_EQ(flagged, demo.plan.collapsedCount());
}

TEST(PruneArtifact, SurvivesJournalTruncationAndResume) {
  PrunedDemo demo;
  ASSERT_GT(demo.plan.collapsedCount(), 0u);

  const fs::path dir =
      fs::temp_directory_path() /
      ("fades-prune-test-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path journalPath = dir / "journal.jsonl";

  std::string full;
  {
    campaign::CampaignJournal journal(journalPath.string());
    full = demo.artifact(demo.run(2, /*pruned=*/true, &journal));
  }

  // Simulate a mid-campaign SIGKILL: keep the header and the first few
  // committed outcome lines, drop the rest.
  {
    std::ifstream in(journalPath, std::ios::binary);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    ASSERT_GT(lines.size(), 8u);
    std::ofstream out(journalPath, std::ios::binary | std::ios::trunc);
    for (std::size_t i = 0; i < 6; ++i) out << lines[i] << "\n";
  }

  campaign::CampaignJournal resumed(journalPath.string());
  const std::string after =
      demo.artifact(demo.run(2, /*pruned=*/true, &resumed, /*resume=*/true));
  EXPECT_EQ(after, full);

  fs::remove_all(dir);
}

// ------------------------------------------------------------ golden file ---

TEST(PrunePlanGolden, BubblesortVfitFlopPlanMatchesCommitted) {
  // Pins the exact fades.prune/1 text - key order, class order, window
  // encoding - for the paper's Bubblesort workload. To regenerate after an
  // intentional schema or analysis change:
  //   FADES_REGEN_GOLDEN=1 ./tests/test_prune
  //       --gtest_filter='PrunePlanGolden.*'
  service::JobSpec job;
  job.tool = "vfit";
  job.workload = "bubblesort6";
  job.spec.model = FaultModel::BitFlip;
  job.spec.targets = TargetClass::SequentialFF;
  job.spec.unit = static_cast<int>(Unit::None);
  job.spec.band = DurationBand::shortBand();
  job.spec.experiments = 200;
  job.spec.seed = 2006;
  job.prune = true;
  service::validate(job);
  const auto sys = service::buildSystem(job);
  const auto plan = service::buildPrunePlan(*sys);
  EXPECT_GT(plan.collapsedCount(), 0u);
  const std::string text = campaign::toJson(plan).dump(2) + "\n";

  const std::string goldenPath =
      std::string(FADES_TEST_DATA_DIR) + "/prune_plan_bubblesort_vfit_ff.json";
  if (std::getenv("FADES_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(goldenPath, std::ios::binary | std::ios::trunc);
    out << text;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << goldenPath;
  }
  std::ifstream in(goldenPath, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << goldenPath;
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(text, golden.str());
}

}  // namespace
}  // namespace fades
