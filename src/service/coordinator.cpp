#include "service/coordinator.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "campaign/artifact.hpp"
#include "common/error.hpp"
#include "obs/artifact.hpp"
#include "obs/log.hpp"

namespace fades::service {

using campaign::CampaignJournal;
using campaign::ExperimentOutcome;
using common::ErrorKind;
using common::FadesError;
using common::require;
using obs::Json;

namespace {

namespace fs = std::filesystem;

Json errorReply(const std::string& message) {
  Json j = Json::object();
  j.set("type", Json(std::string("error")));
  j.set("error", Json(message));
  return j;
}

Json typed(const char* type) {
  Json j = Json::object();
  j.set("type", Json(std::string(type)));
  return j;
}

bool readString(const Json& j, const char* key, std::string& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isString()) return false;
  out = f->asString();
  return true;
}

bool readU64(const Json& j, const char* key, std::uint64_t& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isNumber()) return false;
  out = static_cast<std::uint64_t>(f->asInt());
  return true;
}

}  // namespace

Coordinator::Coordinator(CoordinatorOptions options)
    : opt_(std::move(options)),
      cLeasesGranted_(obs::Registry::global().counter("service.leases_granted")),
      cLeasesExpired_(obs::Registry::global().counter("service.leases_expired")),
      cLeasesRequeued_(
          obs::Registry::global().counter("service.leases_requeued")),
      cBytesStreamed_(obs::Registry::global().counter("service.bytes_streamed")),
      gWorkersActive_(obs::Registry::global().gauge("service.workers_active")),
      gWorkersQuarantined_(
          obs::Registry::global().gauge("service.workers_quarantined")) {
  require(opt_.blockSize > 0, ErrorKind::InvalidArgument,
          "coordinator block size must be positive");
  fs::create_directories(opt_.storeDir + "/campaigns");
  fs::create_directories(opt_.storeDir + "/journals");
  fs::create_directories(opt_.storeDir + "/objects");
  fs::create_directories(opt_.storeDir + "/service");
  // Bans survive coordinator restarts: a byzantine worker stays out even
  // after a --resume, so it cannot relitigate its quarantine by racing the
  // restarted coordinator to a lease.
  std::ifstream events(opt_.storeDir + "/service/events.jsonl");
  std::string line;
  while (std::getline(events, line)) {
    const auto parsed = Json::parse(line);
    if (!parsed) continue;  // torn tail from a killed append
    std::string event;
    std::string worker;
    std::string reason;
    if (readString(*parsed, "event", event) && event == "ban" &&
        readString(*parsed, "worker", worker)) {
      readString(*parsed, "reason", reason);
      WorkerState& w = workers_[worker];
      w.name = worker;
      w.banned = true;
      w.banReason = reason;
    }
  }
  std::size_t banned = 0;
  for (const auto& [name, w] : workers_) banned += w.banned ? 1 : 0;
  gWorkersQuarantined_.set(static_cast<double>(banned));
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::start() {
  require(listener_ == nullptr, ErrorKind::InvalidArgument,
          "coordinator already started");
  listener_ = std::make_unique<Listener>(opt_.port);
  port_ = listener_->port();
  stop_.store(false);
  acceptThread_ = std::thread([this] { acceptLoop(); });
  reaperThread_ = std::thread([this] { reaperLoop(); });
  FADES_LOG(Info) << "coordinator listening"
                  << obs::kv("port", static_cast<std::uint64_t>(port_))
                  << obs::kv("store", opt_.storeDir);
}

void Coordinator::stop() {
  if (stop_.exchange(true)) {
    // A second stop still joins anything the first one raced with.
  }
  if (listener_ != nullptr) listener_->close();
  if (acceptThread_.joinable()) acceptThread_.join();
  if (reaperThread_.joinable()) reaperThread_.join();
  std::map<std::uint64_t, std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(handlersMu_);
    handlers.swap(handlers_);
    finishedHandlers_.clear();
  }
  for (auto& [id, t] : handlers) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [fp, c] : campaigns_) {
    if (c->journal != nullptr) c->journal->close();
  }
}

// ---------------------------------------------------------------------------
// Campaign registration
// ---------------------------------------------------------------------------

std::string Coordinator::submit(const JobSpec& job) {
  validate(job);
  const std::string fp = fingerprint(job);
  std::lock_guard<std::mutex> lock(mu_);
  if (campaigns_.find(fp) != campaigns_.end()) return fp;

  auto c = std::make_unique<Campaign>();
  c->job = job;
  c->fp = fp;
  c->journal = std::make_unique<CampaignJournal>(
      opt_.storeDir + "/journals/" + fp + ".jsonl", opt_.fsync);
  // Always resume: the store is content-addressed, so a journal under this
  // fingerprint IS this campaign's prior progress (a different spec would
  // live under a different fingerprint). That makes coordinator restart and
  // duplicate submission both safe by default.
  c->journal->open(job.spec, /*resume=*/true);
  c->progress = std::make_unique<campaign::ProgressTracker>(
      campaign::toString(job.spec.model), job.spec.experiments,
      opt_.progressInterval);

  for (const auto& [index, outcome] : c->journal->completed()) {
    if (index >= job.spec.experiments) continue;
    c->committed[index] = outcome;
    c->journaled.insert(index);
    c->progress->record(outcome);
  }

  const unsigned total = job.spec.experiments;
  const unsigned blocks = (total + opt_.blockSize - 1) / opt_.blockSize;
  c->blocks.reserve(blocks);
  for (unsigned b = 0; b < blocks; ++b) {
    Block block;
    block.first = b * opt_.blockSize;
    block.count = std::min(opt_.blockSize, total - block.first);
    block.needsAgreement = opt_.auditEvery != 0 && b % opt_.auditEvery == 0;
    bool covered = true;
    for (unsigned i = block.first; i < block.first + block.count; ++i) {
      if (c->journaled.find(i) == c->journaled.end()) {
        covered = false;
        break;
      }
    }
    if (covered) {
      // Fully journaled (prior run): committed as-is. Journaled lines were
      // verified at commit time; re-verification would need the lying
      // worker's name, which the journal deliberately does not carry.
      block.state = BlockState::Done;
      ++c->doneBlocks;
    }
    c->blocks.push_back(std::move(block));
  }
  for (std::size_t b = 0; b < c->blocks.size(); ++b) {
    if (c->blocks[b].state == BlockState::Pending) c->queue.push_back(b);
  }

  FADES_LOG(Info) << "campaign submitted" << obs::kv("fingerprint", fp)
                  << obs::kv("experiments",
                             static_cast<std::uint64_t>(total))
                  << obs::kv("blocks", static_cast<std::uint64_t>(blocks))
                  << obs::kv("resumed",
                             static_cast<std::uint64_t>(c->committed.size()));
  order_.push_back(fp);
  auto& slot = campaigns_[fp];
  slot = std::move(c);
  writeMetaLocked(*slot);
  if (slot->doneBlocks == slot->blocks.size()) finalizeLocked(*slot);
  return fp;
}

std::vector<std::string> Coordinator::resumeFromStore() {
  std::vector<std::string> resumed;
  std::vector<JobSpec> jobs;
  {
    const fs::path dir = fs::path(opt_.storeDir) / "campaigns";
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.path().extension() != ".json") continue;
      std::ifstream in(entry.path());
      std::stringstream text;
      text << in.rdbuf();
      const auto meta = Json::parse(text.str());
      if (!meta) {
        FADES_LOG(Warn) << "store meta unreadable"
                        << obs::kv("path", entry.path().string());
        continue;
      }
      const Json* jobJson = meta->find("job");
      JobSpec job;
      std::string error;
      if (jobJson == nullptr || !jobSpecFromJson(*jobJson, job, &error)) {
        FADES_LOG(Warn) << "store meta has no valid job"
                        << obs::kv("path", entry.path().string())
                        << obs::kv("error", error);
        continue;
      }
      jobs.push_back(std::move(job));
    }
  }
  for (const auto& job : jobs) resumed.push_back(submit(job));
  return resumed;
}

// ---------------------------------------------------------------------------
// Accept / connection handling
// ---------------------------------------------------------------------------

void Coordinator::acceptLoop() {
  while (!stop_.load()) {
    Socket sock = listener_->accept(/*timeoutMs=*/100);
    if (!sock.valid()) continue;
    std::lock_guard<std::mutex> lock(handlersMu_);
    for (const std::uint64_t id : finishedHandlers_) {
      const auto it = handlers_.find(id);
      if (it != handlers_.end()) {
        it->second.join();
        handlers_.erase(it);
      }
    }
    finishedHandlers_.clear();
    if (handlers_.size() >= 256) {
      // Bounded handler pool: a connect flood degrades into refused
      // connections, not unbounded thread creation.
      continue;
    }
    const std::uint64_t id = ++handlerSeq_;
    handlers_.emplace(
        id, std::thread(
                [this, id](Socket s) {
                  handleConnection(std::move(s));
                  std::lock_guard<std::mutex> lk(handlersMu_);
                  finishedHandlers_.push_back(id);
                },
                std::move(sock)));
  }
}

void Coordinator::handleConnection(Socket sock) {
  std::string helloWorker;
  bool counted = false;
  try {
    const auto hello = recvMessage(sock, opt_.recvTimeoutMs, &cBytesStreamed_);
    if (!hello) return;
    std::string type;
    std::string schema;
    if (!readString(*hello, "type", type) || type != "hello" ||
        !readString(*hello, "schema", schema) || schema != kWireSchema) {
      sendMessage(sock, errorReply("expected a fades.wire/1 hello"),
                  &cBytesStreamed_);
      return;
    }
    std::string role;
    readString(*hello, "role", role);
    if (role == "worker" && readString(*hello, "worker", helloWorker)) {
      counted = true;
      gWorkersActive_.set(activeWorkers_.fetch_add(1) + 1);
    }
    Json welcome = typed("welcome");
    welcome.set("schema", Json(std::string(kWireSchema)));
    sendMessage(sock, welcome, &cBytesStreamed_);

    while (!stop_.load()) {
      if (!waitReadable(sock, 100)) continue;
      const auto msg = recvMessage(sock, opt_.recvTimeoutMs, &cBytesStreamed_);
      if (!msg) break;
      Json reply;
      try {
        reply = dispatch(*msg, helloWorker);
      } catch (const FadesError& e) {
        reply = errorReply(e.what());
      }
      sendMessage(sock, reply, &cBytesStreamed_);
    }
  } catch (const std::exception& e) {
    // A stalled, flooding or vanished peer costs one log line and one
    // closed socket; its leases come back through deadline expiry.
    FADES_LOG(Warn) << "connection dropped"
                    << obs::kv("worker", helloWorker)
                    << obs::kv("error", e.what());
  }
  if (counted) {
    gWorkersActive_.set(activeWorkers_.fetch_sub(1) - 1);
  }
}

Json Coordinator::dispatch(const Json& msg, std::string& helloWorker) {
  std::string type;
  if (!readString(msg, "type", type)) {
    return errorReply("message has no type");
  }
  if (type == "lease_request") {
    std::string worker = helloWorker;
    readString(msg, "worker", worker);
    if (worker.empty()) return errorReply("lease_request needs a worker name");
    return handleLease(worker);
  }
  if (type == "heartbeat") return handleHeartbeat(msg);
  if (type == "complete") return handleComplete(msg);
  if (type == "release") return handleRelease(msg);
  if (type == "submit") return handleSubmit(msg);
  if (type == "status") return handleStatus(msg);
  if (type == "fetch") return handleFetch(msg);
  return errorReply("unknown message type '" + type + "'");
}

// ---------------------------------------------------------------------------
// Worker bookkeeping
// ---------------------------------------------------------------------------

Coordinator::WorkerState& Coordinator::workerLocked(const std::string& name) {
  WorkerState& w = workers_[name];
  if (w.name.empty()) w.name = name;
  return w;
}

void Coordinator::strikeLocked(WorkerState& w, const std::string& why) {
  ++w.strikes;
  const unsigned shift = std::min(w.strikes - 1, 6u);
  const auto backoff =
      std::chrono::milliseconds(opt_.strikeBackoffBaseMs << shift);
  w.backoffUntil = std::chrono::steady_clock::now() + backoff;
  FADES_LOG(Warn) << "worker strike" << obs::kv("worker", w.name)
                  << obs::kv("strikes", static_cast<std::uint64_t>(w.strikes))
                  << obs::kv("backoff_ms",
                             static_cast<std::uint64_t>(backoff.count()))
                  << obs::kv("why", why);
  if (!w.banned && w.strikes >= opt_.strikeBanThreshold) {
    banLocked(w, "exceeded strike threshold (" + why + ")");
  }
}

void Coordinator::banLocked(WorkerState& w, const std::string& reason) {
  if (w.banned) return;
  w.banned = true;
  w.banReason = reason;
  std::size_t banned = 0;
  for (const auto& [name, ws] : workers_) banned += ws.banned ? 1 : 0;
  gWorkersQuarantined_.set(static_cast<double>(banned));
  Json event = Json::object();
  event.set("event", Json(std::string("ban")));
  event.set("worker", Json(w.name));
  event.set("reason", Json(reason));
  appendEventLocked(event);
  FADES_LOG(Error) << "worker banned" << obs::kv("worker", w.name)
                   << obs::kv("reason", reason);

  // Expunge the liar's uncorroborated work: every Done block whose winning
  // result came from this worker alone goes back to the queue, and the
  // journal is atomically rewritten without those lines so no downstream
  // reader (resume, analytics, the final fold) ever sees them.
  for (const auto& fp : order_) {
    Campaign& c = *campaigns_[fp];
    if (c.complete) continue;
    bool dirty = false;
    for (std::size_t b = 0; b < c.blocks.size(); ++b) {
      Block& block = c.blocks[b];
      if (block.state != BlockState::Done || block.winnerWorker != w.name) {
        continue;
      }
      bool corroborated = false;
      for (const auto& r : block.results) {
        if (r.worker != w.name && r.digest == block.winnerDigest) {
          corroborated = true;
          break;
        }
      }
      if (corroborated) continue;
      uncommitLocked(c, block);
      block.results.erase(
          std::remove_if(block.results.begin(), block.results.end(),
                         [&](const BlockResult& r) {
                           return r.worker == w.name;
                         }),
          block.results.end());
      block.needsAgreement = true;
      requeueLocked(c, b, /*front=*/true);
      dirty = true;
    }
    if (dirty) c.journal->rewrite(c.job.spec, c.committed);
  }
}

// ---------------------------------------------------------------------------
// Block lifecycle
// ---------------------------------------------------------------------------

void Coordinator::requeueLocked(Campaign& c, std::size_t blockIdx,
                                bool front) {
  Block& block = c.blocks[blockIdx];
  block.state = BlockState::Pending;
  block.leaseId = 0;
  block.lessee.clear();
  if (front) {
    c.queue.push_front(blockIdx);
  } else {
    c.queue.push_back(blockIdx);
  }
  cLeasesRequeued_.inc();
}

void Coordinator::uncommitLocked(Campaign& c, Block& block) {
  for (unsigned i = block.first; i < block.first + block.count; ++i) {
    c.committed.erase(i);
    c.journaled.erase(i);
  }
  if (block.state == BlockState::Done) --c.doneBlocks;
  block.state = BlockState::Pending;
  block.winnerWorker.clear();
  block.winnerDigest.clear();
}

void Coordinator::commitLocked(Campaign& c, std::size_t blockIdx,
                               const BlockResult& result) {
  Block& block = c.blocks[blockIdx];
  for (const auto& outcome : result.outcomes) {
    if (c.journaled.insert(outcome.index).second) {
      c.journal->append(outcome);
      c.progress->record(outcome);
    }
    c.committed[outcome.index] = outcome;
  }
  block.state = BlockState::Done;
  block.leaseId = 0;
  block.lessee.clear();
  block.winnerWorker = result.worker;
  block.winnerDigest = result.digest;
  ++c.doneBlocks;
  if (c.doneBlocks == c.blocks.size()) finalizeLocked(c);
}

void Coordinator::resolveLocked(Campaign& c, std::size_t blockIdx) {
  Block& block = c.blocks[blockIdx];
  // Agreement rule: commit the earliest result whose digest a second,
  // distinct worker has reproduced. Workers whose digest disagrees with the
  // agreed one are byzantine by construction (every outcome is a pure
  // function of (spec, index), so honest workers cannot disagree).
  for (std::size_t i = 0; i < block.results.size(); ++i) {
    for (std::size_t j = i + 1; j < block.results.size(); ++j) {
      if (block.results[i].digest != block.results[j].digest) continue;
      if (block.results[i].worker == block.results[j].worker) continue;
      const BlockResult winner = block.results[i];
      std::vector<std::string> liars;
      for (const auto& r : block.results) {
        if (r.digest != winner.digest) liars.push_back(r.worker);
      }
      commitLocked(c, blockIdx, winner);
      for (const auto& liar : liars) {
        banLocked(workerLocked(liar),
                  "result digest disagrees with agreed block " +
                      c.fp + "/" + std::to_string(block.first));
      }
      return;
    }
  }
  if (!block.needsAgreement && block.results.size() == 1) {
    commitLocked(c, blockIdx, block.results[0]);
    return;
  }
  if (block.results.size() >= 2) {
    // Distinct digests and no agreement yet: someone is lying, we cannot
    // yet say who. Escalate to the agreement rule and let more workers
    // vote.
    if (!block.needsAgreement) {
      FADES_LOG(Warn) << "block result dispute"
                      << obs::kv("fingerprint", c.fp)
                      << obs::kv("first",
                                 static_cast<std::uint64_t>(block.first))
                      << obs::kv("results", static_cast<std::uint64_t>(
                                                block.results.size()));
      block.needsAgreement = true;
    }
  }
  // No commit yet: make sure the block stays claimable. A block still
  // Leased to someone else is left alone - that lessee's completion is the
  // next vote - and one already queued is not queued twice.
  if (block.state == BlockState::Pending &&
      std::find(c.queue.begin(), c.queue.end(), blockIdx) == c.queue.end()) {
    requeueLocked(c, blockIdx, /*front=*/true);
  }
}

void Coordinator::finalizeLocked(Campaign& c) {
  campaign::CampaignResult result;
  result.spec = c.job.spec;
  // The canonical index-ordered fold (std::map iterates in key order): the
  // same merge the single-process runner does, which is what keeps the
  // artifact byte-identical at any worker count and kill schedule.
  for (const auto& [index, outcome] : c.committed) result.fold(outcome);
  const std::string text = artifactText(c.job, result);
  const std::string object = fnv1a64Hex(text);
  obs::writeFile(opt_.storeDir + "/objects/" + object + ".json", text);
  c.artifactObject = object;
  c.complete = true;
  writeMetaLocked(c);
  FADES_LOG(Info) << "campaign complete" << obs::kv("fingerprint", c.fp)
                  << obs::kv("object", object)
                  << obs::kv("bytes",
                             static_cast<std::uint64_t>(text.size()));
  allDoneCv_.notify_all();
}

void Coordinator::writeMetaLocked(const Campaign& c) {
  Json meta = Json::object();
  meta.set("schema", Json(std::string("fades.store/1")));
  meta.set("fingerprint", Json(c.fp));
  meta.set("job", toJson(c.job));
  meta.set("complete", Json(c.complete));
  if (!c.artifactObject.empty()) meta.set("object", Json(c.artifactObject));
  obs::writeFile(opt_.storeDir + "/campaigns/" + c.fp + ".json",
                 meta.dump(2) + "\n");
}

void Coordinator::appendEventLocked(const Json& event) {
  std::ofstream out(opt_.storeDir + "/service/events.jsonl",
                    std::ios::app | std::ios::binary);
  out << event.dump() << "\n";
}

// ---------------------------------------------------------------------------
// Message handlers
// ---------------------------------------------------------------------------

Json Coordinator::handleLease(const std::string& worker) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkerState& w = workerLocked(worker);
  if (w.banned) {
    Json j = typed("shutdown");
    j.set("reason", Json("worker is quarantined: " + w.banReason));
    return j;
  }
  const auto now = std::chrono::steady_clock::now();
  if (now < w.backoffUntil) {
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        w.backoffUntil - now);
    Json j = typed("idle");
    j.set("retry_ms", Json(static_cast<std::uint64_t>(wait.count())));
    return j;
  }
  // Round-robin across campaigns so a long campaign cannot starve a short
  // one submitted after it.
  for (std::size_t step = 0; step < order_.size(); ++step) {
    Campaign& c =
        *campaigns_[order_[(rrCursor_ + step) % order_.size()]];
    if (c.complete) continue;
    for (std::size_t scans = c.queue.size(); scans > 0; --scans) {
      const std::size_t blockIdx = c.queue.front();
      c.queue.pop_front();
      Block& block = c.blocks[blockIdx];
      if (block.state != BlockState::Pending) continue;  // stale queue entry
      bool hasOwnResult = false;
      for (const auto& r : block.results) {
        if (r.worker == worker) {
          hasOwnResult = true;
          break;
        }
      }
      if (hasOwnResult) {
        // A worker cannot second its own result; leave the block for
        // someone else.
        c.queue.push_back(blockIdx);
        continue;
      }
      block.state = BlockState::Leased;
      block.leaseId = ++leaseSeq_;
      block.lessee = worker;
      block.deadline = now + std::chrono::milliseconds(opt_.leaseMs);
      cLeasesGranted_.inc();
      rrCursor_ = (rrCursor_ + step) % order_.size();
      Json j = typed("lease");
      j.set("fingerprint", Json(c.fp));
      j.set("lease_id", Json(block.leaseId));
      j.set("first", Json(static_cast<std::uint64_t>(block.first)));
      j.set("count", Json(static_cast<std::uint64_t>(block.count)));
      j.set("lease_ms", Json(static_cast<std::uint64_t>(opt_.leaseMs)));
      j.set("job", toJson(c.job));
      return j;
    }
  }
  if (opt_.shutdownWhenDone && !order_.empty()) {
    bool done = true;
    for (const auto& fp : order_) done = done && campaigns_[fp]->complete;
    if (done) {
      Json j = typed("shutdown");
      j.set("reason", Json(std::string("all campaigns complete")));
      return j;
    }
  }
  Json j = typed("idle");
  j.set("retry_ms", Json(static_cast<std::uint64_t>(200)));
  return j;
}

Json Coordinator::handleHeartbeat(const Json& msg) {
  std::string worker;
  std::string fp;
  std::uint64_t leaseId = 0;
  std::uint64_t first = 0;
  if (!readString(msg, "worker", worker) ||
      !readString(msg, "fingerprint", fp) ||
      !readU64(msg, "lease_id", leaseId) || !readU64(msg, "first", first)) {
    return errorReply("heartbeat misses worker/fingerprint/lease_id/first");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Campaign* c = findCampaignLocked(fp);
  Block* block =
      c != nullptr ? findBlockLocked(*c, static_cast<unsigned>(first))
                   : nullptr;
  if (block == nullptr || block->state != BlockState::Leased ||
      block->leaseId != leaseId || block->lessee != worker) {
    Json j = typed("revoked");
    j.set("lease_id", Json(leaseId));
    return j;
  }
  block->deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(opt_.leaseMs);
  Json j = typed("heartbeat_ack");
  j.set("lease_id", Json(leaseId));
  return j;
}

Json Coordinator::handleComplete(const Json& msg) {
  std::string worker;
  std::string fp;
  std::uint64_t first = 0;
  if (!readString(msg, "worker", worker) ||
      !readString(msg, "fingerprint", fp) || !readU64(msg, "first", first)) {
    return errorReply("complete misses worker/fingerprint/first");
  }
  const Json* outcomesJson = msg.find("outcomes");

  std::lock_guard<std::mutex> lock(mu_);
  Campaign* c = findCampaignLocked(fp);
  if (c == nullptr) return errorReply("unknown campaign " + fp);
  Block* block = findBlockLocked(*c, static_cast<unsigned>(first));
  if (block == nullptr) {
    return errorReply("campaign " + fp + " has no block at " +
                      std::to_string(first));
  }
  const std::size_t blockIdx =
      static_cast<std::size_t>(block - c->blocks.data());

  // Parse and validate the streamed outcomes: exactly the block's indices,
  // in order, each line round-tripping through the journal codec. Anything
  // else is a protocol violation - strike the sender, keep the block.
  BlockResult result;
  result.worker = worker;
  bool valid = outcomesJson != nullptr && outcomesJson->isArray() &&
               outcomesJson->items().size() == block->count;
  if (valid) {
    result.outcomes.reserve(block->count);
    for (std::size_t i = 0; i < outcomesJson->items().size(); ++i) {
      ExperimentOutcome outcome;
      if (!CampaignJournal::outcomeFromJson(outcomesJson->items()[i],
                                            outcome) ||
          outcome.index != block->first + i) {
        valid = false;
        break;
      }
      result.outcomes.push_back(std::move(outcome));
    }
  }
  if (!valid) {
    strikeLocked(workerLocked(worker), "malformed completion payload");
    return errorReply("completion payload does not match block " + fp + "/" +
                      std::to_string(first));
  }
  result.digest = resultDigest(result.outcomes);

  if (block->state == BlockState::Done) {
    // Duplicate completion: first-committed wins; this one is only checked
    // for agreement. A clean match is an expired-lease echo; a mismatch
    // means the committed result and this one cannot both be honest, so the
    // block goes back under the two-agreeing-workers rule and the journal
    // drops its lines until the vote settles.
    if (result.digest == block->winnerDigest) {
      Json j = typed("complete_ack");
      j.set("committed", Json(false));
      return j;
    }
    FADES_LOG(Warn) << "duplicate completion disagrees"
                    << obs::kv("fingerprint", fp)
                    << obs::kv("first", static_cast<std::uint64_t>(first))
                    << obs::kv("committed_by", block->winnerWorker)
                    << obs::kv("disputed_by", worker);
    uncommitLocked(*c, *block);
    c->journal->rewrite(c->job.spec, c->committed);
    block->needsAgreement = true;
  }

  if (block->state == BlockState::Leased && block->lessee == worker) {
    block->state = BlockState::Pending;
    block->leaseId = 0;
    block->lessee.clear();
  }
  bool replaced = false;
  for (auto& r : block->results) {
    if (r.worker == worker) {
      r = result;
      replaced = true;
      break;
    }
  }
  if (!replaced) block->results.push_back(std::move(result));
  const std::size_t done = c->doneBlocks;
  resolveLocked(*c, blockIdx);
  Json j = typed("complete_ack");
  j.set("committed", Json(c->doneBlocks > done ||
                          c->blocks[blockIdx].state == BlockState::Done));
  return j;
}

Json Coordinator::handleRelease(const Json& msg) {
  std::string worker;
  std::string fp;
  std::uint64_t leaseId = 0;
  std::uint64_t first = 0;
  std::string error;
  if (!readString(msg, "worker", worker) ||
      !readString(msg, "fingerprint", fp) ||
      !readU64(msg, "lease_id", leaseId) || !readU64(msg, "first", first)) {
    return errorReply("release misses worker/fingerprint/lease_id/first");
  }
  readString(msg, "error", error);
  std::lock_guard<std::mutex> lock(mu_);
  Campaign* c = findCampaignLocked(fp);
  Block* block =
      c != nullptr ? findBlockLocked(*c, static_cast<unsigned>(first))
                   : nullptr;
  // Idempotent: releasing an expired, re-leased or already completed block
  // (including the same release arriving twice) acknowledges without
  // touching state - only the exact live lease is returned to the queue.
  if (block != nullptr && block->state == BlockState::Leased &&
      block->leaseId == leaseId && block->lessee == worker) {
    requeueLocked(*c, static_cast<std::size_t>(block - c->blocks.data()),
                  /*front=*/true);
    strikeLocked(workerLocked(worker),
                 error.empty() ? "released lease" : "released lease: " + error);
  }
  return typed("release_ack");
}

Json Coordinator::handleSubmit(const Json& msg) {
  const Json* jobJson = msg.find("job");
  JobSpec job;
  std::string error;
  if (jobJson == nullptr || !jobSpecFromJson(*jobJson, job, &error)) {
    return errorReply("submit carries no valid job: " + error);
  }
  try {
    const std::string fp = submit(job);
    Json j = typed("submitted");
    j.set("fingerprint", Json(fp));
    return j;
  } catch (const FadesError& e) {
    return errorReply(e.what());
  }
}

Json Coordinator::handleStatus(const Json& msg) {
  Json j = typed("status_report");
  std::lock_guard<std::mutex> lock(mu_);
  std::string fp;
  if (readString(msg, "fingerprint", fp)) {
    Campaign* c = findCampaignLocked(fp);
    if (c == nullptr) return errorReply("unknown campaign " + fp);
    j.set("fingerprint", Json(fp));
    j.set("done", Json(static_cast<std::uint64_t>(c->committed.size())));
    j.set("total",
          Json(static_cast<std::uint64_t>(c->job.spec.experiments)));
    j.set("complete", Json(c->complete));
    if (!c->artifactObject.empty()) j.set("object", Json(c->artifactObject));
  } else {
    Json list = Json::array();
    for (const auto& name : order_) list.push(Json(name));
    j.set("campaigns", std::move(list));
  }
  j.set("workers_active", Json(static_cast<std::uint64_t>(
                              std::max(0, activeWorkers_.load()))));
  j.set("workers_quarantined",
        Json(static_cast<std::uint64_t>(gWorkersQuarantined_.value())));
  j.set("leases_granted", Json(cLeasesGranted_.value()));
  j.set("leases_expired", Json(cLeasesExpired_.value()));
  j.set("leases_requeued", Json(cLeasesRequeued_.value()));
  j.set("bytes_streamed", Json(cBytesStreamed_.value()));
  return j;
}

Json Coordinator::handleFetch(const Json& msg) {
  std::string fp;
  if (!readString(msg, "fingerprint", fp)) {
    return errorReply("fetch misses fingerprint");
  }
  std::string object;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Campaign* c = findCampaignLocked(fp);
    if (c == nullptr) return errorReply("unknown campaign " + fp);
    if (!c->complete) return errorReply("campaign " + fp + " is not complete");
    object = c->artifactObject;
    path = opt_.storeDir + "/objects/" + object + ".json";
  }
  std::ifstream in(path, std::ios::binary);
  std::stringstream text;
  text << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return errorReply("cannot read artifact object " + object);
  }
  if (text.str().size() + 1024 > kMaxFrameBytes) {
    return errorReply("artifact " + object +
                      " exceeds the frame bound; read it from the store at " +
                      path);
  }
  Json j = typed("artifact");
  j.set("fingerprint", Json(fp));
  j.set("object", Json(object));
  j.set("content", Json(text.str()));
  return j;
}

// ---------------------------------------------------------------------------
// Reaper / progress
// ---------------------------------------------------------------------------

void Coordinator::reaperLoop() {
  auto lastProgress = std::chrono::steady_clock::now();
  while (!stop_.load()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt_.reaperTickMs));
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& fp : order_) {
      Campaign& c = *campaigns_[fp];
      if (c.complete) continue;
      for (std::size_t b = 0; b < c.blocks.size(); ++b) {
        Block& block = c.blocks[b];
        if (block.state != BlockState::Leased || now < block.deadline) {
          continue;
        }
        // Missed deadline: the lease is void. The worker may be dead
        // (SIGKILL), wedged, or merely slow - either way the block goes
        // back to the queue and the lessee earns a strike. A slow worker's
        // late completion is still accepted and digest-checked.
        cLeasesExpired_.inc();
        FADES_LOG(Warn) << "lease expired" << obs::kv("fingerprint", fp)
                        << obs::kv("first",
                                   static_cast<std::uint64_t>(block.first))
                        << obs::kv("worker", block.lessee);
        const std::string lessee = block.lessee;
        requeueLocked(c, b, /*front=*/true);
        strikeLocked(workerLocked(lessee), "lease deadline missed");
      }
    }
    if (opt_.progressLogMs > 0 &&
        now - lastProgress >=
            std::chrono::milliseconds(opt_.progressLogMs)) {
      lastProgress = now;
      logProgressLocked();
    }
  }
}

void Coordinator::logProgressLocked() {
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  for (const auto& fp : order_) {
    Campaign& c = *campaigns_[fp];
    done += c.committed.size();
    total += c.job.spec.experiments;
    if (!c.complete && opt_.progressInterval != 0) c.progress->heartbeat();
  }
  FADES_LOG(Info) << "service progress" << obs::kv("done", done)
                  << obs::kv("total", total)
                  << obs::kv("leases_granted", cLeasesGranted_.value())
                  << obs::kv("leases_expired", cLeasesExpired_.value())
                  << obs::kv("leases_requeued", cLeasesRequeued_.value())
                  << obs::kv("workers_active",
                             static_cast<std::uint64_t>(
                                 std::max(0, activeWorkers_.load())))
                  << obs::kv("workers_quarantined",
                             static_cast<std::uint64_t>(
                                 gWorkersQuarantined_.value()))
                  << obs::kv("bytes_streamed", cBytesStreamed_.value());
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

Coordinator::Campaign* Coordinator::findCampaignLocked(const std::string& fp) {
  const auto it = campaigns_.find(fp);
  return it == campaigns_.end() ? nullptr : it->second.get();
}

Coordinator::Block* Coordinator::findBlockLocked(Campaign& c, unsigned first) {
  if (opt_.blockSize == 0) return nullptr;
  const std::size_t idx = first / opt_.blockSize;
  if (idx >= c.blocks.size() || c.blocks[idx].first != first) return nullptr;
  return &c.blocks[idx];
}

std::string Coordinator::resultDigest(
    const std::vector<ExperimentOutcome>& outcomes) {
  std::string text;
  for (const auto& outcome : outcomes) {
    text += CampaignJournal::outcomeLine(outcome);
  }
  return fnv1a64Hex(text);
}

bool Coordinator::campaignComplete(const std::string& fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = campaigns_.find(fingerprint);
  return it != campaigns_.end() && it->second->complete;
}

bool Coordinator::allComplete() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (campaigns_.empty()) return false;
  for (const auto& [fp, c] : campaigns_) {
    if (!c->complete) return false;
  }
  return true;
}

bool Coordinator::waitForAllComplete(int timeoutMs) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto done = [this] {
    if (campaigns_.empty()) return false;
    for (const auto& [fp, c] : campaigns_) {
      if (!c->complete) return false;
    }
    return true;
  };
  if (timeoutMs < 0) {
    allDoneCv_.wait(lock, done);
    return true;
  }
  return allDoneCv_.wait_for(lock, std::chrono::milliseconds(timeoutMs),
                             done);
}

std::string Coordinator::artifactPath(const std::string& fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = campaigns_.find(fingerprint);
  if (it == campaigns_.end() || !it->second->complete) return "";
  return opt_.storeDir + "/objects/" + it->second->artifactObject + ".json";
}

std::vector<std::string> Coordinator::bannedWorkers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> banned;
  for (const auto& [name, w] : workers_) {
    if (w.banned) banned.push_back(name);
  }
  return banned;
}

}  // namespace fades::service
