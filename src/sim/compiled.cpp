#include "sim/compiled.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace fades::sim {

using common::ErrorKind;
using common::require;
using netlist::GateOp;

CompiledSimulator::CompiledSimulator(const Netlist& netlist)
    : nl_(netlist), levels_(netlist::levelize(netlist)) {
  steps_.reserve(nl_.gateCount());
  for (const netlist::GateId g : levels_.schedule) {
    const auto& gate = nl_.gates()[g.value];
    steps_.push_back(Step{gate.op,
                          gate.in[0].valid() ? gate.in[0].value : kNoNet,
                          gate.in[1].valid() ? gate.in[1].value : kNoNet,
                          gate.in[2].valid() ? gate.in[2].value : kNoNet,
                          gate.out.value});
  }

  values_.assign(nl_.netCount(), 0);
  driven_.assign(nl_.netCount(), 0);
  flopW_.assign(nl_.flopCount(), 0);
  xorMask_.assign(nl_.netCount(), 0);
  forceMask_.assign(nl_.netCount(), 0);
  forceVal_.assign(nl_.netCount(), 0);
  perturbed_.assign(nl_.netCount(), 0);
  nextFlop_.assign(nl_.flopCount(), 0);

  ramBits_.resize(nl_.ramCount());
  ramLatch_.resize(nl_.ramCount());
  ramScratch_.resize(nl_.ramCount());
  for (std::uint32_t r = 0; r < nl_.ramCount(); ++r) {
    const auto& ram = nl_.ram(RamId{r});
    ramBits_[r].assign(ram.depth() * ram.dataBits, 0);
    ramLatch_[r].assign(ram.dataBits, 0);
    ramScratch_[r].read.assign(ram.dataBits, 0);
    ramScratch_[r].din.assign(ram.dataBits, 0);
    ramScratch_[r].rows.assign(kLanes, 0);
  }

  reset();
}

void CompiledSimulator::markPerturbed(std::uint32_t net) {
  // First perturbation of a net: snapshot the driven word, which until now
  // was identical to the visible value.
  if (!perturbed_[net]) {
    perturbed_[net] = 1;
    driven_[net] = values_[net];
  }
}

CompiledSimulator::Word CompiledSimulator::blend(std::uint32_t net,
                                                 Word driven) const {
  const Word f = forceMask_[net];
  return ((driven ^ xorMask_[net]) & ~f) | (forceVal_[net] & f);
}

void CompiledSimulator::writeNet(std::uint32_t net, Word driven) {
  if (perturbed_[net]) {
    driven_[net] = driven;
    driven = blend(net, driven);
  }
  values_[net] = driven;
}

void CompiledSimulator::reblend(std::uint32_t net) {
  if ((xorMask_[net] | forceMask_[net]) == 0) {
    perturbed_[net] = 0;
    values_[net] = driven_[net];
  } else {
    values_[net] = blend(net, driven_[net]);
  }
  dirty_ = true;
}

void CompiledSimulator::reset() {
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(driven_.begin(), driven_.end(), 0);
  std::fill(xorMask_.begin(), xorMask_.end(), 0);
  std::fill(forceMask_.begin(), forceMask_.end(), 0);
  std::fill(forceVal_.begin(), forceVal_.end(), 0);
  std::fill(perturbed_.begin(), perturbed_.end(), 0);
  cycle_ = 0;

  for (std::uint32_t f = 0; f < nl_.flopCount(); ++f) {
    const auto& flop = nl_.flops()[f];
    flopW_[f] = broadcast(flop.init);
    values_[flop.q.value] = flopW_[f];
  }
  for (std::uint32_t r = 0; r < nl_.ramCount(); ++r) {
    const auto& ram = nl_.ram(RamId{r});
    for (std::size_t row = 0; row < ram.depth(); ++row) {
      const std::uint64_t init = ram.initWord(row);
      for (unsigned b = 0; b < ram.dataBits; ++b) {
        ramBits_[r][row * ram.dataBits + b] = broadcast((init >> b) & 1);
      }
    }
    std::fill(ramLatch_[r].begin(), ramLatch_[r].end(), Word{0});
    applyRamOutput(r);
  }
  dirty_ = true;
  settle();
}

void CompiledSimulator::setInput(const std::string& portName,
                                 std::uint64_t value) {
  const auto* port = nl_.findInput(portName);
  require(port != nullptr, ErrorKind::InvalidArgument,
          "no input port '" + portName + "'");
  for (std::size_t i = 0; i < port->nets.size(); ++i) {
    writeNet(port->nets[i].value, broadcast((value >> i) & 1));
  }
  dirty_ = true;
}

std::uint64_t CompiledSimulator::portValue(
    const std::string& outputPortName) const {
  return portValueLane(outputPortName, 0);
}

std::uint64_t CompiledSimulator::portValueLane(
    const std::string& outputPortName, unsigned lane) const {
  const auto* port = nl_.findOutput(outputPortName);
  require(port != nullptr, ErrorKind::InvalidArgument,
          "no output port '" + outputPortName + "'");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < port->nets.size(); ++i) {
    v |= ((values_[port->nets[i].value] >> lane) & 1) << i;
  }
  return v;
}

std::uint64_t CompiledSimulator::busValue(
    const std::vector<NetId>& bus) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    v |= (values_[bus[i].value] & 1) << i;
  }
  return v;
}

std::uint64_t CompiledSimulator::ramWordLane(RamId id, std::size_t row,
                                             unsigned lane) const {
  const auto& ram = nl_.ram(id);
  std::uint64_t v = 0;
  for (unsigned b = 0; b < ram.dataBits; ++b) {
    v |= ((ramBits_[id.value][row * ram.dataBits + b] >> lane) & 1ULL) << b;
  }
  return v;
}

void CompiledSimulator::settle() {
  // The straight-line kernel: every gate once, in level order. Operand
  // slot kNoNet reads the hardwired zero (values_ never has that index;
  // the ternary below folds it to 0 like the event-driven engine does).
  for (const Step& s : steps_) {
    const Word a = s.in0 != kNoNet ? values_[s.in0] : 0;
    const Word b = s.in1 != kNoNet ? values_[s.in1] : 0;
    Word w = 0;
    switch (s.op) {
      case GateOp::Const0: w = 0; break;
      case GateOp::Const1: w = ~Word{0}; break;
      case GateOp::Buf:    w = a; break;
      case GateOp::Not:    w = ~a; break;
      case GateOp::And:    w = a & b; break;
      case GateOp::Or:     w = a | b; break;
      case GateOp::Xor:    w = a ^ b; break;
      case GateOp::Nand:   w = ~(a & b); break;
      case GateOp::Nor:    w = ~(a | b); break;
      case GateOp::Xnor:   w = ~(a ^ b); break;
      case GateOp::Mux: {
        const Word c = s.in2 != kNoNet ? values_[s.in2] : 0;
        w = (c & b) | (~c & a);
        break;
      }
    }
    if (perturbed_[s.out]) {
      driven_[s.out] = w;
      w = blend(s.out, w);
    }
    values_[s.out] = w;
  }
  events_ += steps_.size();
  dirty_ = false;
}

void CompiledSimulator::applyRamOutput(std::uint32_t ramIndex) {
  const auto& ram = nl_.ram(RamId{ramIndex});
  for (unsigned b = 0; b < ram.dataBits; ++b) {
    writeNet(ram.dataOut[b].value, ramLatch_[ramIndex][b]);
  }
}

void CompiledSimulator::step() {
  if (dirty_) settle();

  // Sample phase: latch every flop D and every RAM port with pre-edge
  // values (two-phase / nonblocking semantics, like the event-driven
  // engine). Nothing is committed until all sampling is done, because RAM
  // address or data pins may be flop Q nets.
  for (std::uint32_t f = 0; f < nl_.flopCount(); ++f) {
    nextFlop_[f] = values_[nl_.flops()[f].d.value];
  }
  for (std::uint32_t r = 0; r < nl_.ramCount(); ++r) {
    const auto& ram = nl_.ram(RamId{r});
    RamScratch& sc = ramScratch_[r];
    const unsigned D = ram.dataBits;
    // Lane-divergence test: the address is uniform when every address-bit
    // word is all-zeros or all-ones.
    Word diverge = 0;
    for (unsigned i = 0; i < ram.addrBits; ++i) {
      const Word w = values_[ram.addr[i].value];
      diverge |= w ^ broadcast(w & 1);
    }
    sc.uniform = diverge == 0;
    sc.we = ram.isRom() ? 0 : values_[ram.writeEnable.value];
    for (unsigned b = 0; b < D; ++b) {
      sc.din[b] = ram.isRom() ? 0 : values_[ram.dataIn[b].value];
    }
    if (sc.uniform) {
      sc.row = 0;
      for (unsigned i = 0; i < ram.addrBits; ++i) {
        sc.row |= static_cast<std::uint32_t>(values_[ram.addr[i].value] & 1)
                  << i;
      }
      for (unsigned b = 0; b < D; ++b) {
        sc.read[b] = ramBits_[r][sc.row * D + b];  // read-first
      }
    } else {
      // Transpose the per-lane addresses, then gather each lane's read
      // bits from its own row. Reads complete before any write below.
      for (unsigned l = 0; l < kLanes; ++l) {
        std::uint32_t row = 0;
        for (unsigned i = 0; i < ram.addrBits; ++i) {
          row |= static_cast<std::uint32_t>(
                     (values_[ram.addr[i].value] >> l) & 1)
                 << i;
        }
        sc.rows[l] = row;
      }
      for (unsigned b = 0; b < D; ++b) {
        Word w = 0;
        for (unsigned l = 0; l < kLanes; ++l) {
          w |= ((ramBits_[r][sc.rows[l] * D + b] >> l) & 1ULL) << l;
        }
        sc.read[b] = w;
      }
    }
  }

  // Commit phase: flop state, then RAM writes and the registered read port.
  for (std::uint32_t f = 0; f < nl_.flopCount(); ++f) {
    flopW_[f] = nextFlop_[f];
    writeNet(nl_.flops()[f].q.value, flopW_[f]);
  }
  events_ += nl_.flopCount();
  for (std::uint32_t r = 0; r < nl_.ramCount(); ++r) {
    const auto& ram = nl_.ram(RamId{r});
    RamScratch& sc = ramScratch_[r];
    const unsigned D = ram.dataBits;
    if (sc.we != 0) {
      if (sc.uniform) {
        for (unsigned b = 0; b < D; ++b) {
          Word& cell = ramBits_[r][sc.row * D + b];
          cell = (cell & ~sc.we) | (sc.din[b] & sc.we);
        }
      } else {
        // Divergent write: each enabled lane updates only its own bit of
        // its own row, so lanes never disturb one another.
        for (unsigned l = 0; l < kLanes; ++l) {
          if (((sc.we >> l) & 1) == 0) continue;
          for (unsigned b = 0; b < D; ++b) {
            Word& cell = ramBits_[r][sc.rows[l] * D + b];
            cell = (cell & ~(Word{1} << l)) |
                   (((sc.din[b] >> l) & 1ULL) << l);
          }
        }
      }
      ++events_;
    }
    ramLatch_[r] = sc.read;
    applyRamOutput(r);
  }

  ++cycle_;
  settle();
}

void CompiledSimulator::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) step();
}

void CompiledSimulator::force(NetId id, bool value) {
  forceLanes(id, ~Word{0}, broadcast(value));
  settle();
}

void CompiledSimulator::release(NetId id) {
  releaseLanes(id, ~Word{0});
  settle();
}

void CompiledSimulator::depositFlop(FlopId id, bool value) {
  depositFlopLanes(id, ~Word{0}, broadcast(value));
  settle();
}

void CompiledSimulator::depositRam(RamId id, std::size_t row,
                                   std::uint64_t value) {
  const auto& ram = nl_.ram(id);
  for (unsigned b = 0; b < ram.dataBits; ++b) {
    ramBits_[id.value][row * ram.dataBits + b] = broadcast((value >> b) & 1);
  }
  ++events_;
}

void CompiledSimulator::depositFlopLanes(FlopId id, Word laneMask,
                                         Word laneValues) {
  flopW_[id.value] =
      (flopW_[id.value] & ~laneMask) | (laneValues & laneMask);
  writeNet(nl_.flops()[id.value].q.value, flopW_[id.value]);
  ++events_;
  dirty_ = true;
}

void CompiledSimulator::xorFlopLanes(FlopId id, Word laneMask) {
  flopW_[id.value] ^= laneMask;
  writeNet(nl_.flops()[id.value].q.value, flopW_[id.value]);
  ++events_;
  dirty_ = true;
}

void CompiledSimulator::xorRamBitLanes(RamId id, std::size_t row,
                                       unsigned bit, Word laneMask) {
  const auto& ram = nl_.ram(id);
  ramBits_[id.value][row * ram.dataBits + bit] ^= laneMask;
  ++events_;
}

void CompiledSimulator::xorNetLanes(NetId id, Word laneMask) {
  markPerturbed(id.value);
  xorMask_[id.value] |= laneMask;
  reblend(id.value);
}

void CompiledSimulator::clearXorNetLanes(NetId id, Word laneMask) {
  if (!perturbed_[id.value]) return;
  xorMask_[id.value] &= ~laneMask;
  reblend(id.value);
}

void CompiledSimulator::forceLanes(NetId id, Word laneMask, Word laneValues) {
  markPerturbed(id.value);
  forceMask_[id.value] |= laneMask;
  forceVal_[id.value] =
      (forceVal_[id.value] & ~laneMask) | (laneValues & laneMask);
  reblend(id.value);
}

void CompiledSimulator::releaseLanes(NetId id, Word laneMask) {
  if (!perturbed_[id.value]) return;
  // Event-driven semantics for undriven/input nets: a released input keeps
  // whatever value the force left in place (there is no driver to restore
  // from), so adopt the visible value as the new driven word there.
  const auto d = nl_.driverOf(id);
  if (d.kind == Netlist::DriverKind::Input ||
      d.kind == Netlist::DriverKind::None) {
    const Word released = forceMask_[id.value] & laneMask;
    driven_[id.value] =
        (driven_[id.value] & ~released) | (values_[id.value] & released);
  }
  forceMask_[id.value] &= ~laneMask;
  forceVal_[id.value] &= ~laneMask;
  reblend(id.value);
}

}  // namespace fades::sim
