// fades_report: fold fades.run/1 artifacts and fades.journal/1 checkpoint
// journals into a vulnerability report - per-component rankings, per-PC and
// per-instruction attribution, derating fractions and fault-latency
// histograms.
//
//   fades_report [--json PATH] [--md PATH] [--csv PATH] INPUT...
//
// Each INPUT is an artifact file, a journal file, or a directory scanned
// (sorted) for both. With no output flags the markdown report goes to
// stdout. The JSON output is the versioned fades.report/1 document and is
// byte-identical for byte-identical input records - including artifacts
// produced at different --jobs counts or through checkpoint/resume.
//
// Exit code: 0 = report written, 1 = processing error, 2 = usage.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "analytics/analytics.hpp"
#include "campaign/report.hpp"

namespace {

constexpr const char* kUsage =
    "usage: fades_report [--json PATH] [--md PATH] [--csv PATH] INPUT...\n"
    "  INPUT: fades.run/1 artifact (.json/.jsonl), fades.journal/1 journal,\n"
    "         or a directory containing them\n";

[[noreturn]] void usageError(const std::string& message) {
  std::fprintf(stderr, "error: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath, mdPath, csvPath;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) {
      if (i + 1 >= argc) usageError(std::string(flag) + " expects a path");
      return std::string(argv[++i]);
    };
    if (arg == "--json") {
      jsonPath = value("--json");
    } else if (arg == "--md") {
      mdPath = value("--md");
    } else if (arg == "--csv") {
      csvPath = value("--csv");
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usageError("unknown flag '" + arg + "'");
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) usageError("no inputs given");

  try {
    const auto loaded = fades::analytics::loadInputs(inputs);
    const auto report = fades::analytics::buildReport(loaded);
    if (!jsonPath.empty()) {
      fades::campaign::writeTextFile(
          jsonPath, fades::analytics::toJson(report).dump(2) + "\n");
    }
    if (!mdPath.empty()) {
      fades::campaign::writeTextFile(mdPath,
                                     fades::analytics::toMarkdown(report));
    }
    if (!csvPath.empty()) {
      fades::campaign::writeTextFile(csvPath,
                                     fades::analytics::toCsv(report));
    }
    if (jsonPath.empty() && mdPath.empty() && csvPath.empty()) {
      std::fputs(fades::analytics::toMarkdown(report).c_str(), stdout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
