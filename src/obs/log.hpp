// Leveled structured logger for campaign-scale runs.
//
// Usage:
//   FADES_LOG(Info) << "campaign progress"
//                   << obs::kv("done", 128) << obs::kv("total", 3000);
//
// emits one line per record to the configured sink (stderr by default):
//   2026-08-05T10:15:02.123Z INFO campaign progress done=128 total=3000
//
// The free-text part of the stream becomes the message; kv() fields are
// appended as key=value pairs, quoted and escaped when the value contains
// spaces, quotes or '=' so lines stay machine-parseable. Environment:
//   FADES_LOG      trace|debug|info|warn|error|off  (threshold, default info)
//   FADES_LOG_FILE append formatted records to this path instead of stderr
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fades::obs {

enum class LogLevel : int { Trace = 0, Debug, Info, Warn, Error, Off };

const char* toString(LogLevel level);
LogLevel parseLogLevel(std::string_view text, LogLevel fallback);

struct LogField {
  std::string key;
  std::string value;
};

/// Build a structured field from any streamable value.
template <typename T>
LogField kv(std::string key, const T& value) {
  if constexpr (std::is_same_v<T, bool>) {
    return {std::move(key), value ? "true" : "false"};
  } else if constexpr (std::is_convertible_v<const T&, std::string>) {
    return {std::move(key), std::string(value)};
  } else {
    std::ostringstream os;
    os << value;
    return {std::move(key), os.str()};
  }
}

struct LogRecord {
  LogLevel level = LogLevel::Info;
  std::string message;
  std::vector<LogField> fields;
  std::uint64_t wallMicros = 0;  // microseconds since the Unix epoch
  const char* file = "";
  int line = 0;
};

class Logger {
 public:
  /// Process-wide logger; threshold and sink seeded from the environment on
  /// first use.
  static Logger& global();

  LogLevel threshold() const {
    return static_cast<LogLevel>(threshold_.load(std::memory_order_relaxed));
  }
  void setThreshold(LogLevel level) {
    threshold_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  bool enabled(LogLevel level) const { return level >= threshold(); }

  using Sink = std::function<void(const LogRecord&)>;
  /// Replace the output sink; an empty function restores the default
  /// (formatted lines to stderr, or FADES_LOG_FILE when set).
  void setSink(Sink sink);

  void log(LogRecord record);

  /// The canonical single-line rendering (timestamp, level, message,
  /// key=value fields with escaping).
  static std::string format(const LogRecord& record);

 private:
  Logger();

  std::atomic<int> threshold_{static_cast<int>(LogLevel::Info)};
  std::mutex mu_;  // serializes sink invocations
  Sink sink_;
  std::string filePath_;  // from FADES_LOG_FILE; empty = stderr
};

/// Temporary stream that assembles one LogRecord and submits it on
/// destruction (end of the full expression).
class LogStream {
 public:
  LogStream(Logger& logger, LogLevel level, const char* file, int line)
      : logger_(logger) {
    record_.level = level;
    record_.file = file;
    record_.line = line;
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() {
    record_.message = message_.str();
    logger_.log(std::move(record_));
  }

  LogStream& operator<<(LogField field) {
    record_.fields.push_back(std::move(field));
    return *this;
  }
  template <typename T>
  LogStream& operator<<(const T& value) {
    message_ << value;
    return *this;
  }

 private:
  Logger& logger_;
  LogRecord record_;
  std::ostringstream message_;
};

}  // namespace fades::obs

/// Leveled logging entry point; the stream is evaluated only when the level
/// clears the threshold.
#define FADES_LOG(levelName)                                          \
  if (!::fades::obs::Logger::global().enabled(                        \
          ::fades::obs::LogLevel::levelName))                         \
    ;                                                                 \
  else                                                                \
    ::fades::obs::LogStream(::fades::obs::Logger::global(),           \
                            ::fades::obs::LogLevel::levelName,        \
                            __FILE__, __LINE__)
