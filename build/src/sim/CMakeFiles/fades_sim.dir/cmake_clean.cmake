file(REMOVE_RECURSE
  "CMakeFiles/fades_sim.dir/simulator.cpp.o"
  "CMakeFiles/fades_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/fades_sim.dir/vcd.cpp.o"
  "CMakeFiles/fades_sim.dir/vcd.cpp.o.d"
  "libfades_sim.a"
  "libfades_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fades_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
