// Benchmark workloads for the MC8051 core.
//
// The paper's experiments run Bubblesort ("commonly used in HDL-based fault
// injection experiments", Section 6.1; 1303 cycles on their 8051 model).
// Each workload carries its program, the cycle budget used as the campaign
// experiment length, and a functional self-check so the golden run can be
// asserted correct. Workloads publish a result signature on P0/P1 so that
// output traces observe meaningful data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fades::mc8051 {

struct Workload {
  std::string name;
  std::string source;                // assembly text
  std::vector<std::uint8_t> bytes;   // assembled program
  std::uint64_t cycles = 0;          // golden run length (measured via ISS)
  std::uint8_t expectedP0 = 0;       // value on P0 at completion
  std::uint8_t expectedP1 = 0;       // value on P1 at completion
};

/// Bubblesort over N bytes of internal RAM (descending input, ascending
/// output). P1 receives a checksum of the sorted array, P0 a completion
/// marker. The default size yields a run length comparable to the paper's
/// 1303 cycles.
Workload bubblesort(unsigned elements = 10);

/// 8-bit additive/rotating checksum over a ROM-supplied data block written
/// to IRAM first (exercises MOV/ADD/RL and both memories).
Workload checksum(unsigned elements = 16);

/// Iterative Fibonacci with results pushed through the stack
/// (exercises PUSH/POP/LCALL/RET and arithmetic with carry).
Workload fibonacci(unsigned steps = 10);

/// 16-bit dot product of two IRAM vectors using MUL AB and ADDC, finished
/// with a DIV AB scaling step (exercises the multiplier/divider array, the
/// B register and carry-chained accumulation).
Workload dotproduct(unsigned elements = 6);

}  // namespace fades::mc8051
